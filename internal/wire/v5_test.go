// Protocol version 5 codecs: the trace-context suffix on the execution
// frames and the Traces introspection frames. The cross-version
// contract mirrors the v3→v4 transition: every version-4 encoding must
// stay byte-identical (an un-traced frame from a v5 node is exactly the
// frame a v4 node would send), the suffix-tolerant T decoders must agree
// with the strict v4 decoders on every suffix-free input, and a traced
// frame must be its un-traced encoding plus exactly ten bytes.
package wire

import (
	"bytes"
	"testing"

	"funcdb/internal/value"
)

// sampleTraceCtx is a representative propagated context: a non-trivial
// id, one forward hop behind it, sampled at the origin.
func sampleTraceCtx() TraceCtx {
	return TraceCtx{ID: 0x1122334455667788, Hop: 1, Sampled: true}
}

// TestWireV4V5Equivalence pins the cross-version contract for the trace
// suffix the way TestWireV3V4Equivalence pins the epoch suffix.
func TestWireV4V5Equivalence(t *testing.T) {
	if Version != 5 {
		t.Fatalf("wire.Version = %d, expected 5", Version)
	}
	tc := sampleTraceCtx()

	// The suffix itself is fixed-width little-endian: id, hop, flags.
	if got, want := AppendTraceCtx(nil, tc), []byte("\x88\x77\x66\x55\x44\x33\x22\x11\x01\x01"); !bytes.Equal(got, want) {
		t.Fatalf("trace-context encoding changed:\n got %x\nwant %x", got, want)
	}
	back, err := DecodeTraceCtx(AppendTraceCtx(nil, tc))
	if err != nil || back != tc {
		t.Fatalf("trace-context round-trip: %+v err=%v", back, err)
	}

	// Traced encodings are the v4 golden bytes plus exactly the suffix —
	// nothing before the suffix moves.
	execPlain := AppendExec(nil, 7, "count R")
	if want := []byte("\x07\x07count R"); !bytes.Equal(execPlain, want) {
		t.Fatalf("v4 exec encoding changed:\n got %x\nwant %x", execPlain, want)
	}
	batchPlain := AppendBatch(nil, 7, []string{"count R", "insert 1 into R"})
	epPlain, err := AppendExecPrepared(nil, 11, 17, samplePreparedArgs())
	if err != nil {
		t.Fatal(err)
	}
	bpPlain, err := AppendBatchPrepared(nil, 13, []PreparedCall{{Stmt: 1, Args: samplePreparedArgs()}, {Stmt: 2}})
	if err != nil {
		t.Fatal(err)
	}
	epT, err := AppendExecPreparedT(nil, 11, 17, samplePreparedArgs(), tc)
	if err != nil {
		t.Fatal(err)
	}
	bpT, err := AppendBatchPreparedT(nil, 13, []PreparedCall{{Stmt: 1, Args: samplePreparedArgs()}, {Stmt: 2}}, tc)
	if err != nil {
		t.Fatal(err)
	}
	suffixed := []struct {
		name  string
		plain []byte
		got   []byte
	}{
		{"exec", execPlain, AppendExecT(nil, 7, "count R", tc)},
		{"batch", batchPlain, AppendBatchT(nil, 7, []string{"count R", "insert 1 into R"}, tc)},
		{"exec-prepared", epPlain, epT},
		{"batch-prepared", bpPlain, bpT},
	}
	for _, s := range suffixed {
		want := AppendTraceCtx(append([]byte(nil), s.plain...), tc)
		if !bytes.Equal(s.got, want) {
			t.Fatalf("traced %s is not plain+suffix:\n got %x\nwant %x", s.name, s.got, want)
		}
	}

	// The T decoders accept every suffix-free v4 encoding, agree with the
	// strict decoders, and report an invalid context.
	id, q, dtc, err := DecodeExecT(execPlain)
	if err != nil || id != 7 || q != "count R" || dtc.Valid() {
		t.Fatalf("v4 exec through T decoder: id=%d q=%q tc=%+v err=%v", id, q, dtc, err)
	}
	id, qs, dtc, err := DecodeBatchT(batchPlain)
	if err != nil || id != 7 || len(qs) != 2 || dtc.Valid() {
		t.Fatalf("v4 batch through T decoder: %v", err)
	}
	// ...and the traced encodings surface the context unchanged.
	id, q, dtc, err = DecodeExecT(AppendExecT(nil, 7, "count R", tc))
	if err != nil || id != 7 || q != "count R" || dtc != tc {
		t.Fatalf("traced exec decode: tc=%+v err=%v", dtc, err)
	}
	eid, stmt, args, dtc, err := DecodeExecPreparedIntoT(epT, nil)
	if err != nil || eid != 11 || stmt != 17 || len(args) != 3 || dtc != tc {
		t.Fatalf("traced exec-prepared decode: tc=%+v err=%v", dtc, err)
	}
	bid, calls, _, dtc, err := DecodeBatchPreparedIntoT(bpT, nil, nil)
	if err != nil || bid != 13 || len(calls) != 2 || dtc != tc {
		t.Fatalf("traced batch-prepared decode: tc=%+v err=%v", dtc, err)
	}

	// The strict v4 decoders refuse the traced frames (a v4 node never
	// sees one: senders gate on the negotiated version).
	if _, _, err := DecodeExec(AppendExecT(nil, 7, "count R", tc)); err == nil {
		t.Fatal("v4 exec decoder accepted a traced payload")
	}
	if _, _, _, err := DecodeExecPrepared(epT); err == nil {
		t.Fatal("v4 exec-prepared decoder accepted a traced payload")
	}

	// Forward: the trace suffix is flag-announced and sits after the
	// epoch suffix, so a FwdEpoch|FwdTrace frame is the FwdEpoch frame
	// with the FwdTrace bit set plus the ten suffix bytes.
	stmts := []ForwardStmt{{Origin: "c0", Seq: 3, Query: "count R"}}
	fwdE := AppendForwardE(nil, 9, FwdNoForward|FwdEpoch, 5, stmts)
	fwdT := AppendForwardT(nil, 9, FwdNoForward|FwdEpoch|FwdTrace, 5, tc, stmts)
	patched := append([]byte(nil), fwdE...)
	patched[1] |= FwdTrace
	patched = AppendTraceCtx(patched, tc)
	if !bytes.Equal(fwdT, patched) {
		t.Fatalf("trace suffix disturbed the preceding forward bytes:\n got %x\nwant %x", fwdT, patched)
	}
	fid, fflags, fepoch, ftc, fstmts, err := DecodeForwardT(fwdT)
	if err != nil || fid != 9 || fflags != FwdNoForward|FwdEpoch|FwdTrace || fepoch != 5 || ftc != tc || len(fstmts) != 1 {
		t.Fatalf("forward-T decode: id=%d flags=%x epoch=%d tc=%+v err=%v", fid, fflags, fepoch, ftc, err)
	}
	// Un-flagged forwards decode identically through both decoders.
	fid, fflags, fepoch, ftc, fstmts, err = DecodeForwardT(fwdE)
	if err != nil || fid != 9 || fepoch != 5 || ftc.Valid() || len(fstmts) != 1 {
		t.Fatalf("v4 forward through T decoder: %v", err)
	}
	// A flag without its suffix — or a suffix without its flag — is
	// corrupt, exactly like the epoch discipline.
	bare := append([]byte(nil), fwdE...)
	bare[1] |= FwdTrace
	if _, _, _, _, _, err := DecodeForwardT(bare); err == nil {
		t.Fatal("FwdTrace without a suffix accepted")
	}
	if _, _, _, _, _, err := DecodeForwardT(AppendTraceCtx(append([]byte(nil), fwdE...), tc)); err == nil {
		t.Fatal("suffix without FwdTrace accepted")
	}

	// ForwardPrepared: same discipline through the prepared form.
	pstmts := []PreparedFwdStmt{{Origin: "c0", Seq: 3, Hash: 7, Text: "count R", HasText: true}}
	fpE, err := AppendForwardPrepared(nil, 21, FwdNoForward|FwdEpoch, 77, pstmts)
	if err != nil {
		t.Fatal(err)
	}
	fpT, err := AppendForwardPreparedT(nil, 21, FwdNoForward|FwdEpoch|FwdTrace, 77, tc, pstmts)
	if err != nil {
		t.Fatal(err)
	}
	patched = append([]byte(nil), fpE...)
	patched[1] |= FwdTrace
	patched = AppendTraceCtx(patched, tc)
	if !bytes.Equal(fpT, patched) {
		t.Fatalf("trace suffix disturbed the preceding forward-prepared bytes:\n got %x\nwant %x", fpT, patched)
	}
	pid, pflags, pepoch, ptc, ps, _, err := DecodeForwardPreparedIntoT(fpT, nil, nil)
	if err != nil || pid != 21 || pflags != FwdNoForward|FwdEpoch|FwdTrace || pepoch != 77 || ptc != tc || len(ps) != 1 {
		t.Fatalf("forward-prepared-T decode: tc=%+v err=%v", ptc, err)
	}

	// Suffix validation: a reserved flag bit or a wrong width is corrupt.
	bad := AppendTraceCtx(append([]byte(nil), execPlain...), tc)
	bad[len(bad)-1] |= 0x80
	if _, _, _, err := DecodeExecT(bad); err == nil {
		t.Fatal("reserved trace flag bit accepted")
	}
	if _, _, _, err := DecodeExecT(append(append([]byte(nil), execPlain...), 1, 2, 3)); err == nil {
		t.Fatal("three trailing bytes accepted as a suffix")
	}

	// Hello/Welcome: a v4 peer decodes under v5 unchanged.
	h, err := DecodeHello(AppendHello(nil, Hello{Version: 4, Origin: "c9", Database: "main"}))
	if err != nil || h.Version != 4 || h.Origin != "c9" || h.Database != "main" {
		t.Fatalf("v4 hello through v5 decoder: %+v err=%v", h, err)
	}
	w, err := DecodeWelcome(AppendWelcome(nil, Welcome{Version: 4, Origin: "conn1", Lanes: 4, Database: "main"}))
	if err != nil || w.Version != 4 || w.Lanes != 4 {
		t.Fatalf("v4 welcome through v5 decoder: %+v err=%v", w, err)
	}

	// Traces request/response round-trip, mirroring Stats.
	tid, err := DecodeTraces(AppendTraces(nil, 42))
	if err != nil || tid != 42 {
		t.Fatalf("traces round-trip: %d %v", tid, err)
	}
	doc := []byte(`[{"id":"0011223344556677"}]`)
	tid, got, err := DecodeTracesResponse(AppendTracesResponse(nil, 42, doc))
	if err != nil || tid != 42 || !bytes.Equal(got, doc) {
		t.Fatalf("traces-response round-trip: %v", err)
	}
}

// FuzzDecodeTraceCtx: the suffix decoder sees attacker-chosen trailing
// bytes on every traced frame; it must accept exactly the 10-byte
// encodings AppendTraceCtx produces and nothing else.
func FuzzDecodeTraceCtx(f *testing.F) {
	f.Add(AppendTraceCtx(nil, sampleTraceCtx()))
	f.Add(AppendTraceCtx(nil, TraceCtx{}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tc, err := DecodeTraceCtx(data)
		if err != nil {
			return
		}
		if !bytes.Equal(AppendTraceCtx(nil, tc), data) {
			t.Fatalf("accepted suffix does not re-encode to itself: %x", data)
		}
	})
}

// FuzzDecodeExecT: the suffix-tolerant decoder must agree with the
// strict v4 decoder on every suffix-free input and round-trip every
// accepted payload, traced or not.
func FuzzDecodeExecT(f *testing.F) {
	f.Add(AppendExec(nil, 7, "count R"))
	f.Add(AppendExecT(nil, 7, "count R", sampleTraceCtx()))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, q, tc, err := DecodeExecT(data)
		pid, pq, perr := DecodeExec(data)
		if perr == nil && (err != nil || id != pid || q != pq || tc.Valid()) {
			t.Fatalf("T decoder diverged from v4 decoder on a suffix-free payload: %v", err)
		}
		if err != nil {
			return
		}
		id2, q2, tc2, err := DecodeExecT(AppendExecT(nil, id, q, tc))
		if err != nil || id2 != id || q2 != q || tc2 != tc {
			t.Fatalf("re-decode diverged: %v", err)
		}
	})
}

// FuzzDecodeBatchT: same contract for batch payloads.
func FuzzDecodeBatchT(f *testing.F) {
	f.Add(AppendBatch(nil, 7, []string{"count R", ""}))
	f.Add(AppendBatchT(nil, 7, []string{"count R"}, sampleTraceCtx()))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, qs, tc, err := DecodeBatchT(data)
		pid, pqs, perr := DecodeBatch(data)
		if perr == nil && (err != nil || id != pid || len(qs) != len(pqs) || tc.Valid()) {
			t.Fatalf("T decoder diverged from v4 decoder on a suffix-free payload: %v", err)
		}
		if err != nil {
			return
		}
		id2, qs2, tc2, err := DecodeBatchT(AppendBatchT(nil, id, qs, tc))
		if err != nil || id2 != id || len(qs2) != len(qs) || tc2 != tc {
			t.Fatalf("re-decode diverged: %v", err)
		}
	})
}

// FuzzDecodeExecPreparedT: the traced hot-path decoder against the
// strict scratch decoder, plus the scratch contract under a suffix.
func FuzzDecodeExecPreparedT(f *testing.F) {
	seed, _ := AppendExecPrepared(nil, 1, 2, samplePreparedArgs())
	f.Add(seed)
	traced, _ := AppendExecPreparedT(nil, 1, 2, samplePreparedArgs(), sampleTraceCtx())
	f.Add(traced)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, stmt, args, tc, err := DecodeExecPreparedIntoT(data, make([]value.Item, 0, 4))
		pid, pstmt, pargs, perr := DecodeExecPrepared(data)
		if perr == nil && (err != nil || id != pid || stmt != pstmt || len(args) != len(pargs) || tc.Valid()) {
			t.Fatalf("T decoder diverged from v4 decoder on a suffix-free payload: %v", err)
		}
		if err != nil {
			return
		}
		again, aerr := AppendExecPreparedT(nil, id, stmt, args, tc)
		if aerr != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", aerr)
		}
		id2, stmt2, args2, tc2, err := DecodeExecPreparedIntoT(again, nil)
		if err != nil || id2 != id || stmt2 != stmt || len(args2) != len(args) || tc2 != tc {
			t.Fatalf("re-decode diverged: %v", err)
		}
	})
}

// FuzzDecodeBatchPreparedT: same contract for prepared batches.
func FuzzDecodeBatchPreparedT(f *testing.F) {
	seed, _ := AppendBatchPrepared(nil, 1, []PreparedCall{{Stmt: 1, Args: samplePreparedArgs()}, {Stmt: 2}})
	f.Add(seed)
	traced, _ := AppendBatchPreparedT(nil, 1, []PreparedCall{{Stmt: 1}}, sampleTraceCtx())
	f.Add(traced)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, calls, _, tc, err := DecodeBatchPreparedIntoT(data, nil, nil)
		pid, pcalls, perr := DecodeBatchPrepared(data)
		if perr == nil && (err != nil || id != pid || len(calls) != len(pcalls) || tc.Valid()) {
			t.Fatalf("T decoder diverged from v4 decoder on a suffix-free payload: %v", err)
		}
		if err != nil {
			return
		}
		again, aerr := AppendBatchPreparedT(nil, id, calls, tc)
		if aerr != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", aerr)
		}
		id2, calls2, _, tc2, err := DecodeBatchPreparedIntoT(again, nil, nil)
		if err != nil || id2 != id || len(calls2) != len(calls) || tc2 != tc {
			t.Fatalf("re-decode diverged: %v", err)
		}
	})
}

// FuzzDecodeForwardT: the flag-announced suffix on text forwards. The
// invariants: no context without FwdTrace, agreement with the strict
// decoder on FwdTrace-free payloads, exact re-encoding.
func FuzzDecodeForwardT(f *testing.F) {
	f.Add(AppendForwardE(nil, 9, FwdNoForward|FwdEpoch, 5, []ForwardStmt{{Origin: "c0", Seq: 3, Query: "count R"}}))
	f.Add(AppendForwardT(nil, 9, FwdNoForward|FwdEpoch|FwdTrace, 5, sampleTraceCtx(), []ForwardStmt{{Origin: "c0", Seq: 3, Query: "count R"}}))
	f.Add(AppendForwardT(nil, 1, FwdTrace, 0, sampleTraceCtx(), nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, flags, epoch, tc, stmts, err := DecodeForwardT(data)
		pid, pflags, pepoch, pstmts, perr := DecodeForwardE(data)
		// The v4 decoder ignores flag bits it does not know, so a payload
		// that (vacuously) sets FwdTrace without a suffix passes v4 but is
		// corrupt under v5 — agreement holds only for FwdTrace-free flags.
		if perr == nil && pflags&FwdTrace == 0 && (err != nil || id != pid || flags != pflags || epoch != pepoch || len(stmts) != len(pstmts) || tc.Valid()) {
			t.Fatalf("T decoder diverged from v4 decoder on a suffix-free payload: %v", err)
		}
		if err != nil {
			return
		}
		if flags&FwdTrace == 0 && tc != (TraceCtx{}) {
			t.Fatalf("context %+v without FwdTrace", tc)
		}
		again := AppendForwardT(nil, id, flags, epoch, tc, stmts)
		id2, flags2, epoch2, tc2, stmts2, err := DecodeForwardT(again)
		if err != nil || id2 != id || flags2 != flags || epoch2 != epoch || tc2 != tc || len(stmts2) != len(stmts) {
			t.Fatalf("re-decode diverged: %v", err)
		}
	})
}

// FuzzDecodeForwardPreparedT: same contract through the prepared form.
func FuzzDecodeForwardPreparedT(f *testing.F) {
	seed, _ := AppendForwardPrepared(nil, 1, FwdNoForward, 0, []PreparedFwdStmt{
		{Origin: "c0", Seq: 0, Hash: 7, Text: "count R", HasText: true},
	})
	f.Add(seed)
	traced, _ := AppendForwardPreparedT(nil, 2, FwdNoForward|FwdEpoch|FwdTrace, 1<<40, sampleTraceCtx(), []PreparedFwdStmt{
		{Origin: "c1", Seq: 4, Stmt: 3, Hash: 9, Args: samplePreparedArgs()},
	})
	f.Add(traced)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, flags, epoch, tc, stmts, _, err := DecodeForwardPreparedIntoT(data, nil, nil)
		pid, pflags, pepoch, pstmts, perr := DecodeForwardPrepared(data)
		// See FuzzDecodeForwardT: agreement holds only for FwdTrace-free
		// flags, the bit the v4 decoder cannot interpret.
		if perr == nil && pflags&FwdTrace == 0 && (err != nil || id != pid || flags != pflags || epoch != pepoch || len(stmts) != len(pstmts) || tc.Valid()) {
			t.Fatalf("T decoder diverged from v4 decoder on a suffix-free payload: %v", err)
		}
		if err != nil {
			return
		}
		if flags&FwdTrace == 0 && tc != (TraceCtx{}) {
			t.Fatalf("context %+v without FwdTrace", tc)
		}
		again, aerr := AppendForwardPreparedT(nil, id, flags, epoch, tc, stmts)
		if aerr != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", aerr)
		}
		id2, flags2, epoch2, tc2, stmts2, _, err := DecodeForwardPreparedIntoT(again, nil, nil)
		if err != nil || id2 != id || flags2 != flags || epoch2 != epoch || tc2 != tc || len(stmts2) != len(stmts) {
			t.Fatalf("re-decode diverged: %v", err)
		}
	})
}

// FuzzDecodeTraces: the introspection request/response pair, mirroring
// FuzzDecodeStats.
func FuzzDecodeTraces(f *testing.F) {
	f.Add(AppendTraces(nil, 0))
	f.Add(AppendTraces(nil, 7))
	f.Add(AppendTracesResponse(nil, 9, []byte(`[]`)))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if id, err := DecodeTraces(data); err == nil {
			if id2, err := DecodeTraces(AppendTraces(nil, id)); err != nil || id2 != id {
				t.Fatalf("traces re-decode diverged: %v", err)
			}
		}
		id, doc, err := DecodeTracesResponse(data)
		if err != nil {
			return
		}
		id2, doc2, err := DecodeTracesResponse(AppendTracesResponse(nil, id, doc))
		if err != nil || id2 != id || !bytes.Equal(doc2, doc) {
			t.Fatalf("traces-response re-decode diverged: %v", err)
		}
	})
}

// TestExecPreparedDecodeTAllocGate: the suffix-tolerant decode into warm
// scratch stays allocation-free — tracing must not cost the wire path
// its zero-allocation property, traced or not.
func TestExecPreparedDecodeTAllocGate(t *testing.T) {
	traced, err := AppendExecPreparedT(nil, 11, 17, samplePreparedArgs(), sampleTraceCtx())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := AppendExecPrepared(nil, 11, 17, samplePreparedArgs())
	if err != nil {
		t.Fatal(err)
	}
	for _, payload := range [][]byte{traced, plain} {
		scratch := make([]value.Item, 0, 8)
		for i := 0; i < 16; i++ {
			if _, _, scratch, _, err = DecodeExecPreparedIntoT(payload, scratch[:0]); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(200, func() {
			var derr error
			if _, _, scratch, _, derr = DecodeExecPreparedIntoT(payload, scratch[:0]); derr != nil {
				t.Fatal(derr)
			}
		})
		if avg >= 0.5 {
			t.Fatalf("steady-state traced decode allocates %.2f/frame, want 0 amortized", avg)
		}
	}
}
