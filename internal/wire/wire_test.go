package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"funcdb/internal/core"
	"funcdb/internal/value"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, FrameExec+byte(i%3), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != FrameExec+byte(i%3) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: type %#x, %d bytes", i, typ, len(got))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("end of stream: %v", err)
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	frame, err := AppendFrame(nil, FrameExec, []byte("payload bytes"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte in turn: each corruption must surface as an error,
	// never as a silently different frame.
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x01
		_, payload, err := ReadFrame(bytes.NewReader(mut))
		if err == nil && bytes.Equal(payload, []byte("payload bytes")) {
			continue // flip in a redundant length bit can still checksum-fail below; equality means missed corruption
		}
		if err == nil {
			t.Fatalf("flip at %d: corrupt frame decoded as %q", i, payload)
		}
	}
	// Truncation at every boundary.
	for cut := 1; cut < len(frame); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(frame[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestFrameRefusesOversize(t *testing.T) {
	if _, err := AppendFrame(nil, FrameExec, make([]byte, MaxFrameLen+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize append: %v", err)
	}
	// An oversize length field is refused before allocation.
	hdr := []byte{FrameExec, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize length field: %v", err)
	}
}

func TestHelloWelcomeRoundTrip(t *testing.T) {
	h, err := DecodeHello(AppendHello(nil, Hello{Origin: "c3"}))
	if err != nil || h.Origin != "c3" || h.Database != DefaultDatabase {
		t.Fatalf("hello: %+v, %v", h, err)
	}
	h, err = DecodeHello(AppendHello(nil, Hello{Origin: "c3", Database: "aux"}))
	if err != nil || h.Origin != "c3" || h.Database != "aux" {
		t.Fatalf("hello with database: %+v, %v", h, err)
	}
	w, err := DecodeWelcome(AppendWelcome(nil, Welcome{Lanes: 8, Durable: true, Origin: "conn1", Database: "aux"}))
	if err != nil || w.Lanes != 8 || !w.Durable || w.Origin != "conn1" || w.Database != "aux" {
		t.Fatalf("welcome: %+v, %v", w, err)
	}
	if _, err := DecodeHello([]byte("not magic")); err == nil {
		t.Error("bad magic accepted")
	}
	bad := AppendHello(nil, Hello{})
	bad[len(Magic)] = 99 // future protocol version
	if _, err := DecodeHello(bad); err == nil {
		t.Error("future protocol version accepted")
	}
}

// TestHelloVersion1Compat: a version-1 Hello (no database field) must
// still be accepted and bind to the default database — the multi-store
// protocol bump cannot strand pre-cluster clients.
func TestHelloVersion1Compat(t *testing.T) {
	v1 := append([]byte(Magic), 1)
	v1 = value.AppendString(v1, "old-client")
	h, err := DecodeHello(v1)
	if err != nil || h.Origin != "old-client" || h.Database != DefaultDatabase {
		t.Fatalf("v1 hello: %+v, %v", h, err)
	}

	// A version-1 Welcome (no database echo) likewise.
	w1 := []byte{1}
	w1 = appendVarintBytes(w1, 4)
	w1 = append(w1, 1)
	w1 = value.AppendString(w1, "conn1")
	w, err := DecodeWelcome(w1)
	if err != nil || w.Lanes != 4 || !w.Durable || w.Origin != "conn1" || w.Database != DefaultDatabase {
		t.Fatalf("v1 welcome: %+v, %v", w, err)
	}
}

func appendVarintBytes(dst []byte, v int64) []byte {
	var tmp [10]byte
	n := putVarintTest(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func putVarintTest(buf []byte, v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	i := 0
	for uv >= 0x80 {
		buf[i] = byte(uv) | 0x80
		uv >>= 7
		i++
	}
	buf[i] = byte(uv)
	return i + 1
}

func TestForwardRoundTrip(t *testing.T) {
	stmts := []ForwardStmt{
		{Origin: "c0", Seq: 0, Query: "insert (1, \"a\") into R"},
		{Origin: "c0", Seq: 1, Query: "find 1 in R"},
		{Origin: "gw", Seq: -3, Query: "count R"},
	}
	id, flags, got, err := DecodeForward(AppendForward(nil, 77, FwdNoForward|FwdReadLocal, stmts))
	if err != nil || id != 77 || flags != FwdNoForward|FwdReadLocal || len(got) != 3 {
		t.Fatalf("forward: id %d flags %#x %d stmts, %v", id, flags, len(got), err)
	}
	for i := range stmts {
		if got[i] != stmts[i] {
			t.Errorf("stmt %d: %+v != %+v", i, got[i], stmts[i])
		}
	}
	if _, _, _, err := DecodeForward([]byte{}); err == nil {
		t.Error("empty forward accepted")
	}
}

func TestRedirectSubscribeRoundTrip(t *testing.T) {
	id, addr, rel, err := DecodeRedirect(AppendRedirect(nil, 9, "127.0.0.1:4151", "parts"))
	if err != nil || id != 9 || addr != "127.0.0.1:4151" || rel != "parts" {
		t.Fatalf("redirect: %d %q %q %v", id, addr, rel, err)
	}
	if _, _, _, err := DecodeRedirect([]byte{}); err == nil {
		t.Error("empty redirect accepted")
	}
	after, err := DecodeSubscribe(AppendSubscribe(nil, 123456))
	if err != nil || after != 123456 {
		t.Fatalf("subscribe: %d %v", after, err)
	}
	if _, err := DecodeSubscribe([]byte{}); err == nil {
		t.Error("empty subscribe accepted")
	}
	if _, err := DecodeSubscribe(append(AppendSubscribe(nil, 1), 0)); err == nil {
		t.Error("trailing subscribe bytes accepted")
	}
}

func TestExecBatchPayloads(t *testing.T) {
	id, q, err := DecodeExec(AppendExec(nil, 42, "find 1 in R"))
	if err != nil || id != 42 || q != "find 1 in R" {
		t.Fatalf("exec: %d %q %v", id, q, err)
	}
	qs := []string{"create R", `insert (1, "a") into R`, "count R"}
	id, got, err := DecodeBatch(AppendBatch(nil, 7, qs))
	if err != nil || id != 7 || len(got) != 3 || got[1] != qs[1] {
		t.Fatalf("batch: %d %q %v", id, got, err)
	}
	id, idx, msg, err := DecodeErrorMsg(AppendErrorMsg(nil, 9, 2, "boom"))
	if err != nil || id != 9 || idx != 2 || msg != "boom" {
		t.Fatalf("error: %d %d %q %v", id, idx, msg, err)
	}
	if _, _, _, err := DecodeErrorMsg([]byte{}); err == nil {
		t.Error("empty error payload accepted")
	}
}

// sampleResponses covers every shape a response can take.
func sampleResponses() []core.Response {
	tup := value.NewTuple(value.Int(1), value.Str("widget"))
	return []core.Response{
		{Origin: "c0", Seq: 0, Kind: core.KindInsert, Tuple: tup},
		{Origin: "c0", Seq: 1, Kind: core.KindFind, Found: true, Tuple: tup},
		{Origin: "c0", Seq: 2, Kind: core.KindFind, Found: false},
		{Origin: "c0", Seq: 3, Kind: core.KindDelete, Found: true},
		{Origin: "repl", Seq: 4, Kind: core.KindScan, Count: 2,
			Tuples: []value.Tuple{tup, value.NewTuple(value.Int(2))}},
		{Origin: "c1", Seq: 5, Kind: core.KindCount, Count: 17},
		{Origin: "c1", Seq: 6, Kind: core.KindRange, Count: 0},
		{Origin: "c1", Seq: 7, Kind: core.KindCreate},
		{Origin: "c1", Seq: 8, Kind: core.KindFind,
			Err: errors.New(`database: no such relation "NOPE"`)},
		{Origin: "c2", Seq: 9, Kind: core.KindCustom, Note: "moved 3 tuples"},
		{Origin: "c2", Seq: 10, Kind: core.KindScan, Version: 12},
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for i, r := range sampleResponses() {
		buf, err := AppendResponse(nil, r)
		if err != nil {
			t.Fatalf("resp %d: %v", i, err)
		}
		got, rest, err := DecodeResponse(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("resp %d: %v (%d trailing)", i, err, len(rest))
		}
		// The round trip must render byte-identically: String() is the
		// client-observable form the equivalence harness compares.
		if got.String() != r.String() {
			t.Errorf("resp %d: %q != %q", i, got.String(), r.String())
		}
		if got.Version != r.Version || got.Count != r.Count || got.Found != r.Found {
			t.Errorf("resp %d fields: %+v vs %+v", i, got, r)
		}
	}
}

func TestResponsesBatchRoundTrip(t *testing.T) {
	resps := sampleResponses()
	buf, err := AppendResponses(nil, 1234, resps)
	if err != nil {
		t.Fatal(err)
	}
	id, got, err := DecodeResponses(buf)
	if err != nil || id != 1234 || len(got) != len(resps) {
		t.Fatalf("batch decode: id %d, %d resps, %v", id, len(got), err)
	}
	for i := range resps {
		if got[i].String() != resps[i].String() {
			t.Errorf("resp %d: %q != %q", i, got[i].String(), resps[i].String())
		}
	}

	sbuf, err := AppendSingleResponse(nil, 5, resps[0])
	if err != nil {
		t.Fatal(err)
	}
	sid, sresp, err := DecodeSingleResponse(sbuf)
	if err != nil || sid != 5 || sresp.String() != resps[0].String() {
		t.Fatalf("single: %d %q %v", sid, sresp.String(), err)
	}
}

// FuzzDecodeResponse: arbitrary bytes must never panic or over-allocate,
// only decode or fail.
func FuzzDecodeResponse(f *testing.F) {
	for _, r := range sampleResponses() {
		if buf, err := AppendResponse(nil, r); err == nil {
			f.Add(buf)
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, rest, err := DecodeResponse(data)
		if err == nil {
			// A successful decode must re-encode decodably.
			buf, aerr := AppendResponse(nil, resp)
			if aerr != nil {
				t.Skip() // e.g. tuple with undecodable item kinds cannot occur from decode
			}
			if _, _, rerr := DecodeResponse(buf); rerr != nil {
				t.Fatalf("re-decode failed: %v", rerr)
			}
			_ = rest
		}
	})
}

// FuzzDecodeForward: the cluster forward payload decoder must never
// panic or over-allocate on arbitrary bytes, and every successful decode
// must re-encode to an identical payload (the gateway relays forward
// payloads it did not build).
func FuzzDecodeForward(f *testing.F) {
	f.Add(AppendForward(nil, 1, 0, []ForwardStmt{{Origin: "c0", Seq: 0, Query: "count R"}}))
	f.Add(AppendForward(nil, 900, FwdNoForward, []ForwardStmt{
		{Origin: "c1", Seq: 4, Query: `insert (1, "x") into S`},
		{Origin: "c1", Seq: 5, Query: "delete 1 from S"},
	}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, flags, stmts, err := DecodeForward(data)
		if err != nil {
			return
		}
		again := AppendForward(nil, id, flags, stmts)
		if !bytes.Equal(again, data) {
			// Varints have one canonical form in our encoder; a decodable
			// non-canonical input may legitimately re-encode shorter, but
			// it must still round-trip to the same statements.
			id2, flags2, stmts2, err := DecodeForward(again)
			if err != nil || id2 != id || flags2 != flags || len(stmts2) != len(stmts) {
				t.Fatalf("re-decode diverged: %v", err)
			}
		}
	})
}

// FuzzDecodeHello: handshake payloads from untrusted peers (both
// protocol versions) must decode or fail cleanly.
func FuzzDecodeHello(f *testing.F) {
	f.Add(AppendHello(nil, Hello{Origin: "c0"}))
	f.Add(AppendHello(nil, Hello{Origin: "c0", Database: "aux"}))
	v1 := append([]byte(Magic), 1)
	f.Add(value.AppendString(v1, "legacy"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHello(data)
		if err == nil && h.Database == "" {
			t.Fatal("decoded hello with empty database")
		}
	})
}

// FuzzDecodeRedirect: redirect payloads cross trust boundaries too.
func FuzzDecodeRedirect(f *testing.F) {
	f.Add(AppendRedirect(nil, 3, "10.0.0.7:4150", "R"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, addr, rel, err := DecodeRedirect(data)
		if err != nil {
			return
		}
		id2, addr2, rel2, err := DecodeRedirect(AppendRedirect(nil, id, addr, rel))
		if err != nil || id2 != id || addr2 != addr || rel2 != rel {
			t.Fatalf("redirect re-decode diverged: %v", err)
		}
	})
}

// FuzzReadFrame: arbitrary byte streams must never panic the frame
// reader.
func FuzzReadFrame(f *testing.F) {
	good, _ := AppendFrame(nil, FrameExec, []byte("find 1 in R"))
	f.Add(good)
	f.Add([]byte{FrameExec, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			_, _, err := ReadFrame(r)
			if err != nil {
				break
			}
		}
	})
}
