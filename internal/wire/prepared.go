package wire

import (
	"encoding/binary"
	"fmt"

	"funcdb/internal/value"
)

// Prepared-statement payload codecs (protocol version 4).
//
// The hot-path decoders come in two forms, mirroring the frame reader's
// discipline: a naive allocating form (the fuzz/equivalence reference)
// and an ...Into form that appends into caller-owned scratch so a
// connection's steady state decodes with zero amortized allocations.
// Decoded strings are always fresh (value.DecodeString copies), so only
// the slices are loans on the caller's scratch.

// AppendPrepare encodes a FramePrepare payload:
//
//	prepare := id:uvarint text:string
func AppendPrepare(dst []byte, id uint64, text string) []byte {
	dst = binary.AppendUvarint(dst, id)
	return value.AppendString(dst, text)
}

// DecodePrepare decodes a FramePrepare payload.
func DecodePrepare(buf []byte) (id uint64, text string, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, "", fmt.Errorf("%w: bad prepare id", ErrCorrupt)
	}
	if text, buf, err = value.DecodeString(buf[n:]); err != nil {
		return 0, "", fmt.Errorf("%w: bad prepare text", ErrCorrupt)
	}
	if len(buf) != 0 {
		return 0, "", fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf))
	}
	return id, text, nil
}

// AppendPrepared encodes a FramePrepared payload:
//
//	prepared := id:uvarint stmt:uvarint nparams:uvarint
func AppendPrepared(dst []byte, id, stmt uint64, nparams int) []byte {
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, stmt)
	return binary.AppendUvarint(dst, uint64(nparams))
}

// DecodePrepared decodes a FramePrepared payload.
func DecodePrepared(buf []byte) (id, stmt uint64, nparams int, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, 0, fmt.Errorf("%w: bad prepared id", ErrCorrupt)
	}
	buf = buf[n:]
	stmt, n = binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, 0, fmt.Errorf("%w: bad prepared stmt", ErrCorrupt)
	}
	buf = buf[n:]
	np, n := binary.Uvarint(buf)
	if n <= 0 || np > uint64(MaxFrameLen) {
		return 0, 0, 0, fmt.Errorf("%w: bad prepared nparams", ErrCorrupt)
	}
	if len(buf[n:]) != 0 {
		return 0, 0, 0, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf[n:]))
	}
	return id, stmt, int(np), nil
}

// appendItems encodes a count-prefixed positional-argument list.
func appendItems(dst []byte, args []value.Item) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(args)))
	var err error
	for _, it := range args {
		if dst, err = value.AppendItem(dst, it); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// decodeItemsInto decodes a count-prefixed argument list, appending into
// scratch (which may be nil). The smallest item is 2 bytes (kind byte +
// one varint byte); the count guard bounds what a hostile count can make
// the decoder allocate before per-item validation.
func decodeItemsInto(buf []byte, scratch []value.Item) ([]value.Item, []byte, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 || count > uint64(len(buf))/2+1 {
		return nil, buf, fmt.Errorf("%w: bad arg count", ErrCorrupt)
	}
	buf = buf[n:]
	args := scratch
	var err error
	for i := uint64(0); i < count; i++ {
		var it value.Item
		if it, buf, err = value.DecodeItem(buf); err != nil {
			return nil, buf, fmt.Errorf("%w: bad arg item", ErrCorrupt)
		}
		args = append(args, it)
	}
	return args, buf, nil
}

// AppendExecPrepared encodes a FrameExecPrepared payload:
//
//	execp := id:uvarint stmt:uvarint nargs:uvarint item*
func AppendExecPrepared(dst []byte, id, stmt uint64, args []value.Item) ([]byte, error) {
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, stmt)
	return appendItems(dst, args)
}

// DecodeExecPrepared decodes a FrameExecPrepared payload into fresh
// slices: the naive reference decoder, pinned against the Into form by
// fuzz and the cross-version equivalence test.
func DecodeExecPrepared(buf []byte) (id, stmt uint64, args []value.Item, err error) {
	return DecodeExecPreparedInto(buf, nil)
}

// DecodeExecPreparedInto decodes a FrameExecPrepared payload, appending
// the arguments into scratch — the per-connection form: a warmed scratch
// slice makes the steady-state decode allocation-free (string arguments
// still copy their text, as every decoder here does).
func DecodeExecPreparedInto(buf []byte, scratch []value.Item) (id, stmt uint64, args []value.Item, err error) {
	id, stmt, args, rest, err := decodeExecPreparedTail(buf, scratch)
	if err == nil && len(rest) != 0 {
		return 0, 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return id, stmt, args, err
}

// decodeExecPreparedTail decodes the exec-prepared fields and returns
// the unconsumed tail: the shared core under DecodeExecPreparedInto
// (which requires an empty tail) and DecodeExecPreparedIntoT (which
// accepts a version-5 trace-context suffix).
func decodeExecPreparedTail(buf []byte, scratch []value.Item) (id, stmt uint64, args []value.Item, rest []byte, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, nil, nil, fmt.Errorf("%w: bad exec-prepared id", ErrCorrupt)
	}
	buf = buf[n:]
	stmt, n = binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, nil, nil, fmt.Errorf("%w: bad exec-prepared stmt", ErrCorrupt)
	}
	if args, buf, err = decodeItemsInto(buf[n:], scratch); err != nil {
		return 0, 0, nil, nil, err
	}
	return id, stmt, args, buf, nil
}

// PreparedCall is one (statement id, args) pair inside a
// FrameBatchPrepared payload.
type PreparedCall struct {
	Stmt uint64
	Args []value.Item

	argStart, argEnd int // decode-side offsets into the shared item scratch
}

// AppendBatchPrepared encodes a FrameBatchPrepared payload:
//
//	batchp := id:uvarint count:uvarint (stmt:uvarint nargs:uvarint item*)*
func AppendBatchPrepared(dst []byte, id uint64, calls []PreparedCall) ([]byte, error) {
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(calls)))
	var err error
	for _, c := range calls {
		dst = binary.AppendUvarint(dst, c.Stmt)
		if dst, err = appendItems(dst, c.Args); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DecodeBatchPrepared decodes a FrameBatchPrepared payload into fresh
// slices: the naive reference decoder.
func DecodeBatchPrepared(buf []byte) (id uint64, calls []PreparedCall, err error) {
	id, calls, _, err = DecodeBatchPreparedInto(buf, nil, nil)
	return id, calls, err
}

// DecodeBatchPreparedInto decodes a FrameBatchPrepared payload, reusing
// the caller's call and item scratch. Every call's Args slice aliases the
// returned item slice — they are loans valid until the caller's next
// decode into the same scratch, exactly like the frame reader's payloads.
func DecodeBatchPreparedInto(buf []byte, calls []PreparedCall, items []value.Item) (id uint64, outCalls []PreparedCall, outItems []value.Item, err error) {
	id, outCalls, outItems, rest, err := decodeBatchPreparedTail(buf, calls, items)
	if err == nil && len(rest) != 0 {
		return 0, nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return id, outCalls, outItems, err
}

// decodeBatchPreparedTail decodes the batch-prepared fields and returns
// the unconsumed tail (see decodeExecPreparedTail).
func decodeBatchPreparedTail(buf []byte, calls []PreparedCall, items []value.Item) (id uint64, outCalls []PreparedCall, outItems []value.Item, rest []byte, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, nil, nil, fmt.Errorf("%w: bad batch-prepared id", ErrCorrupt)
	}
	buf = buf[n:]
	count, n := binary.Uvarint(buf)
	// A call is at least 2 bytes (stmt varint + zero-arg count).
	if n <= 0 || count > uint64(len(buf))/2+1 {
		return 0, nil, nil, nil, fmt.Errorf("%w: bad batch-prepared count", ErrCorrupt)
	}
	buf = buf[n:]
	calls, items = calls[:0], items[:0]
	for i := uint64(0); i < count; i++ {
		stmt, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, nil, nil, nil, fmt.Errorf("%w: bad batch-prepared stmt", ErrCorrupt)
		}
		start := len(items)
		if items, buf, err = decodeItemsInto(buf[n:], items); err != nil {
			return 0, nil, nil, nil, err
		}
		calls = append(calls, PreparedCall{Stmt: stmt, argStart: start, argEnd: len(items)})
	}
	// Slice the Args views only now: items has stopped growing, so the
	// backing array is final and the views cannot be invalidated by a
	// later append.
	for i := range calls {
		calls[i].Args = items[calls[i].argStart:calls[i].argEnd]
	}
	return id, calls, items, buf, nil
}

// PreparedFwdStmt is one pre-tagged statement inside a
// FrameForwardPrepared payload. The tag (Origin, Seq) follows
// ForwardStmt's contract: the receiver executes without retagging. The
// statement itself resolves by, in order: Stmt (the receiver's dense id,
// 0 when unknown), Hash (FNV-1a of the text, 0 for a plain text
// statement), then Text when HasText — the sender includes the text on
// first contact or after an ErrUnknownStmt re-prepare demand.
type PreparedFwdStmt struct {
	Origin  string
	Seq     int
	Stmt    uint64
	Hash    uint64
	Text    string
	HasText bool
	Args    []value.Item

	argStart, argEnd int // decode-side offsets into the shared item scratch
}

// AppendForwardPrepared encodes a FrameForwardPrepared payload:
//
//	fwdp := id:uvarint flags:uint8 count:uvarint
//	        (origin:string seq:varint stmt:uvarint hash:uint64le
//	         textflag:uint8 [text:string] nargs:uvarint item*)*
//	        [epoch:uvarint]                         (iff flags&FwdEpoch)
func AppendForwardPrepared(dst []byte, id uint64, flags byte, epoch uint64, stmts []PreparedFwdStmt) ([]byte, error) {
	dst = binary.AppendUvarint(dst, id)
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(stmts)))
	var err error
	for _, st := range stmts {
		dst = value.AppendString(dst, st.Origin)
		dst = binary.AppendVarint(dst, int64(st.Seq))
		dst = binary.AppendUvarint(dst, st.Stmt)
		dst = binary.LittleEndian.AppendUint64(dst, st.Hash)
		if st.HasText {
			dst = append(dst, 1)
			dst = value.AppendString(dst, st.Text)
		} else {
			dst = append(dst, 0)
		}
		if dst, err = appendItems(dst, st.Args); err != nil {
			return dst, err
		}
	}
	if flags&FwdEpoch != 0 {
		dst = binary.AppendUvarint(dst, epoch)
	}
	return dst, nil
}

// DecodeForwardPrepared decodes a FrameForwardPrepared payload into fresh
// slices: the naive reference decoder.
func DecodeForwardPrepared(buf []byte) (id uint64, flags byte, epoch uint64, stmts []PreparedFwdStmt, err error) {
	id, flags, epoch, stmts, _, err = DecodeForwardPreparedInto(buf, nil, nil)
	return id, flags, epoch, stmts, err
}

// DecodeForwardPreparedInto decodes a FrameForwardPrepared payload,
// reusing the caller's statement and item scratch; Args slices alias the
// returned item slice under the same loan contract as
// DecodeBatchPreparedInto.
func DecodeForwardPreparedInto(buf []byte, stmts []PreparedFwdStmt, items []value.Item) (id uint64, flags byte, epoch uint64, outStmts []PreparedFwdStmt, outItems []value.Item, err error) {
	id, flags, epoch, outStmts, outItems, rest, err := decodeForwardPreparedTail(buf, stmts, items)
	if err == nil && len(rest) != 0 {
		return 0, 0, 0, nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return id, flags, epoch, outStmts, outItems, err
}

// decodeForwardPreparedTail decodes the forward-prepared fields —
// including the FwdEpoch suffix when flagged — and returns the
// unconsumed tail (see decodeExecPreparedTail).
func decodeForwardPreparedTail(buf []byte, stmts []PreparedFwdStmt, items []value.Item) (id uint64, flags byte, epoch uint64, outStmts []PreparedFwdStmt, outItems []value.Item, rest []byte, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 || len(buf[n:]) < 1 {
		return 0, 0, 0, nil, nil, nil, fmt.Errorf("%w: bad forward-prepared id", ErrCorrupt)
	}
	flags = buf[n]
	buf = buf[n+1:]
	count, n := binary.Uvarint(buf)
	// A statement is at least 13 bytes (empty origin, seq, stmt, fixed
	// 8-byte hash, text flag, zero-arg count); the guard bounds hostile
	// counts as in DecodeForwardE.
	if n <= 0 || count > uint64(len(buf))/13+1 {
		return 0, 0, 0, nil, nil, nil, fmt.Errorf("%w: bad forward-prepared count", ErrCorrupt)
	}
	buf = buf[n:]
	stmts, items = stmts[:0], items[:0]
	for i := uint64(0); i < count; i++ {
		var st PreparedFwdStmt
		if st.Origin, buf, err = value.DecodeString(buf); err != nil {
			return 0, 0, 0, nil, nil, nil, fmt.Errorf("%w: bad forward-prepared origin", ErrCorrupt)
		}
		seq, n := binary.Varint(buf)
		if n <= 0 {
			return 0, 0, 0, nil, nil, nil, fmt.Errorf("%w: bad forward-prepared seq", ErrCorrupt)
		}
		st.Seq = int(seq)
		buf = buf[n:]
		st.Stmt, n = binary.Uvarint(buf)
		if n <= 0 || len(buf[n:]) < 9 {
			return 0, 0, 0, nil, nil, nil, fmt.Errorf("%w: bad forward-prepared stmt", ErrCorrupt)
		}
		buf = buf[n:]
		st.Hash = binary.LittleEndian.Uint64(buf)
		switch buf[8] {
		case 0:
			buf = buf[9:]
		case 1:
			st.HasText = true
			if st.Text, buf, err = value.DecodeString(buf[9:]); err != nil {
				return 0, 0, 0, nil, nil, nil, fmt.Errorf("%w: bad forward-prepared text", ErrCorrupt)
			}
		default:
			return 0, 0, 0, nil, nil, nil, fmt.Errorf("%w: bad forward-prepared text flag", ErrCorrupt)
		}
		st.argStart = len(items)
		if items, buf, err = decodeItemsInto(buf, items); err != nil {
			return 0, 0, 0, nil, nil, nil, err
		}
		st.argEnd = len(items)
		stmts = append(stmts, st)
	}
	if flags&FwdEpoch != 0 {
		var n int
		epoch, n = binary.Uvarint(buf)
		if n <= 0 {
			return 0, 0, 0, nil, nil, nil, fmt.Errorf("%w: bad forward-prepared epoch", ErrCorrupt)
		}
		buf = buf[n:]
	}
	for i := range stmts {
		stmts[i].Args = items[stmts[i].argStart:stmts[i].argEnd]
	}
	return id, flags, epoch, stmts, items, buf, nil
}
