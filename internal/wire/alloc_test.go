package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// loopSource replays one framed byte stream forever without allocating:
// the zero-noise input for steady-state decode measurement.
type loopSource struct {
	data []byte
	off  int
}

func (l *loopSource) Read(p []byte) (int, error) {
	n := copy(p, l.data[l.off:])
	l.off = (l.off + n) % len(l.data)
	return n, nil
}

// sampleStream frames a mix of payload shapes — empty, small, and a
// response-sized body — as one contiguous stream.
func sampleStream(tb testing.TB) []byte {
	tb.Helper()
	var stream []byte
	var err error
	payloads := [][]byte{
		nil,
		[]byte("find 1 in R"),
		bytes.Repeat([]byte("response payload "), 40),
	}
	for i, p := range payloads {
		if stream, err = AppendFrame(stream, FrameExec+byte(i%3), p); err != nil {
			tb.Fatal(err)
		}
	}
	return stream
}

// TestDecodeAllocGate is the regression gate the CI bench-smoke job runs:
// once the Reader's body buffer is warm, decoding frames allocates
// NOTHING, amortized. The tolerance absorbs a GC happening to land
// inside the measured window.
func TestDecodeAllocGate(t *testing.T) {
	rd := NewReader(&loopSource{data: sampleStream(t)})
	for i := 0; i < 16; i++ { // warm the body buffer to the stream's high-water mark
		if _, _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if avg >= 0.5 {
		t.Fatalf("steady-state decode allocates %.2f/frame, want 0 amortized", avg)
	}
}

// TestEncodeAllocGate: the pooled write path allocates at most one object
// per frame, steady state — and in practice zero, since the encode buffer
// comes from the pool. Gated at ≤1 so a pool miss under GC pressure is
// not a flake.
func TestEncodeAllocGate(t *testing.T) {
	payload := []byte("insert (1, \"v\") into R")
	avg := testing.AllocsPerRun(200, func() {
		if err := WriteFrame(io.Discard, FrameExec, payload); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1.0 {
		t.Fatalf("steady-state encode allocates %.2f/frame, want <= 1", avg)
	}
}

// TestWriteFrameNilPayloadNoAlloc: control frames with no payload
// (FrameQuit, a FrameStats request) must not allocate at all.
func TestWriteFrameNilPayloadNoAlloc(t *testing.T) {
	avg := testing.AllocsPerRun(200, func() {
		if err := WriteFrame(io.Discard, FrameQuit, nil); err != nil {
			t.Fatal(err)
		}
	})
	if avg >= 0.5 {
		t.Fatalf("nil-payload WriteFrame allocates %.2f/frame, want 0", avg)
	}
}

// TestBeginEndFrameNoAlloc: in-place frame assembly into a pre-grown
// buffer allocates nothing — the contract the server's per-connection
// response buffer depends on.
func TestBeginEndFrameNoAlloc(t *testing.T) {
	buf := make([]byte, 0, 4096)
	payload := []byte("response bytes")
	avg := testing.AllocsPerRun(200, func() {
		b, mark := BeginFrame(buf[:0], FrameResponse)
		b = append(b, payload...)
		var err error
		if b, err = EndFrame(b, mark); err != nil {
			t.Fatal(err)
		}
		_ = b
	})
	if avg >= 0.5 {
		t.Fatalf("Begin/EndFrame allocates %.2f/frame, want 0", avg)
	}
}

// TestBeginEndFrameMatchesAppendFrame: the two encoders are
// byte-identical for every payload shape.
func TestBeginEndFrameMatchesAppendFrame(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)} {
		want, err := AppendFrame(nil, FrameBatch, payload)
		if err != nil {
			t.Fatal(err)
		}
		got, mark := BeginFrame(nil, FrameBatch)
		got = append(got, payload...)
		if got, err = EndFrame(got, mark); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Begin/EndFrame diverged from AppendFrame for %d-byte payload:\n got %x\nwant %x",
				len(payload), got, want)
		}
	}
}

// TestEndFrameOversizeRemovesFrame: a payload over MaxFrameLen is refused
// and the buffer comes back exactly as it was before BeginFrame — the
// caller's batch stays well-formed. (Asserted on the mark arithmetic with
// a fabricated length rather than a real 64 MiB payload: EndFrame's only
// size input is len(dst)-mark.)
func TestEndFrameOversizeRemovesFrame(t *testing.T) {
	prefix, err := AppendFrame(nil, FrameExec, []byte("ok"))
	if err != nil {
		t.Fatal(err)
	}
	n := len(prefix)
	buf, mark := BeginFrame(prefix, FrameBatch)
	buf = append(buf, make([]byte, MaxFrameLen+1)...)
	buf, err = EndFrame(buf, mark)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize EndFrame err = %v, want ErrTooLarge", err)
	}
	if len(buf) != n {
		t.Fatalf("oversize EndFrame left %d bytes, want the %d-byte prefix", len(buf), n)
	}
}

// TestReaderPayloadInvalidation pins the Reader's ownership rule: the
// payload aliases the reader's buffer and the next Next() overwrites it.
// A caller that copied in time keeps the original bytes; the aliased
// slice observably changes — the failure a violating caller would hit.
func TestReaderPayloadInvalidation(t *testing.T) {
	first := bytes.Repeat([]byte("A"), 64)
	second := bytes.Repeat([]byte("B"), 64)
	var stream []byte
	var err error
	if stream, err = AppendFrame(stream, FrameExec, first); err != nil {
		t.Fatal(err)
	}
	if stream, err = AppendFrame(stream, FrameExec, second); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(bytes.NewReader(stream))
	_, p1, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), p1...)
	_, p2, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, first) {
		t.Fatal("copy taken before the next read was corrupted")
	}
	if !bytes.Equal(p2, second) {
		t.Fatalf("second payload = %q, want %q", p2, second)
	}
	if bytes.Equal(p1, saved) {
		t.Fatal("first payload survived the next read: buffer was not reused (aliasing contract untested)")
	}
	if !bytes.Equal(p1, second) {
		t.Fatalf("stale payload alias = %q, want it overwritten by the second frame", p1)
	}
}

// TestReaderShedsOversizeBuffer: one giant frame must not pin its buffer
// for the connection's lifetime.
func TestReaderShedsOversizeBuffer(t *testing.T) {
	big := make([]byte, maxRetainedBody+4096)
	var stream []byte
	var err error
	if stream, err = AppendFrame(stream, FrameResponse, big); err != nil {
		t.Fatal(err)
	}
	if stream, err = AppendFrame(stream, FrameExec, []byte("small")); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(bytes.NewReader(stream))
	if _, _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	if cap(rd.body) <= maxRetainedBody {
		t.Fatalf("big frame read into %d-byte buffer, expected it above the retention cap", cap(rd.body))
	}
	if _, _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	if cap(rd.body) > maxRetainedBody {
		t.Fatalf("reader retained %d-byte buffer past the %d cap", cap(rd.body), maxRetainedBody)
	}
}

func BenchmarkAppendFrame(b *testing.B) {
	b.ReportAllocs()
	payload := []byte("insert (12345, \"value\") into R")
	buf := make([]byte, 0, 256)
	for i := 0; i < b.N; i++ {
		var err error
		if buf, err = AppendFrame(buf[:0], FrameExec, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteFramePooled(b *testing.B) {
	b.ReportAllocs()
	payload := []byte("insert (12345, \"value\") into R")
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io.Discard, FrameExec, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderNext(b *testing.B) {
	b.ReportAllocs()
	rd := NewReader(&loopSource{data: sampleStream(b)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rd.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFrameNaive(b *testing.B) {
	b.ReportAllocs()
	src := &loopSource{data: sampleStream(b)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadFrame(src); err != nil {
			b.Fatal(err)
		}
	}
}
