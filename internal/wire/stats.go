package wire

import (
	"encoding/binary"
	"fmt"
)

// AppendStats encodes a FrameStats payload: just the request id.
func AppendStats(dst []byte, id uint64) []byte {
	return binary.AppendUvarint(dst, id)
}

// DecodeStats decodes a FrameStats payload.
func DecodeStats(buf []byte) (id uint64, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 || n != len(buf) {
		return 0, fmt.Errorf("%w: bad stats id", ErrCorrupt)
	}
	return id, nil
}

// AppendStatsResponse encodes a FrameStatsResponse payload:
//
//	stats := id:uvarint doc:bytes…
//
// doc is a JSON-encoded metrics.Snapshot and runs to the end of the
// payload (the frame length delimits it), so the document needs no
// length prefix and the schema can grow without a codec change.
func AppendStatsResponse(dst []byte, id uint64, doc []byte) []byte {
	dst = binary.AppendUvarint(dst, id)
	return append(dst, doc...)
}

// DecodeStatsResponse decodes a FrameStatsResponse payload. The returned
// doc aliases buf.
func DecodeStatsResponse(buf []byte) (id uint64, doc []byte, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad stats id", ErrCorrupt)
	}
	return id, buf[n:], nil
}
