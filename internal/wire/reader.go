package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	// maxRetainedBody caps the body buffer a Reader keeps between
	// frames. One oversized scan response may grow it; the next small
	// frame shrinks it back so a long-lived connection does not pin the
	// high-water mark forever.
	maxRetainedBody = 1 << 20
	// readBodyChunk bounds how much the body buffer grows per read:
	// bytes are requested only as they actually arrive, so a corrupted
	// length field costs a truncation error, never a giant allocation.
	readBodyChunk = 64 << 10
)

// Reader decodes a frame stream into one reusable body buffer: the
// header lands in a fixed array, the body in a slice grown once to the
// connection's working size, so the steady state allocates nothing.
//
// The payload returned by Next aliases the Reader's internal buffer and
// is valid only until the next call to Next. Callers that keep payload
// bytes past that point must copy them — every decoder in this package
// and internal/value already copies what it extracts.
//
// A Reader is not safe for concurrent use; each connection's read loop
// owns one.
type Reader struct {
	r    io.Reader
	body []byte
	// hdr lives on the Reader, not Next's stack: a stack array handed
	// through the io.Reader interface escapes and would cost one
	// allocation per frame.
	hdr [5]byte
}

// NewReader returns a Reader decoding frames from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Next reads one framed message. io.EOF means the peer closed cleanly
// between frames; a close mid-frame surfaces as ErrCorrupt. The returned
// payload is valid only until the next call to Next.
func (rd *Reader) Next() (typ byte, payload []byte, err error) {
	hdr := rd.hdr[:]
	if _, err := io.ReadFull(rd.r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: read: %w", err)
	}
	if _, err := io.ReadFull(rd.r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: truncated frame", ErrCorrupt)
		}
		return 0, nil, fmt.Errorf("wire: read: %w", err)
	}
	typ = hdr[0]
	length := binary.LittleEndian.Uint32(hdr[1:])
	if length > MaxFrameLen {
		return 0, nil, fmt.Errorf("%w: length %d", ErrTooLarge, length)
	}
	need := int(length) + 4 // payload + trailing CRC
	if cap(rd.body) > maxRetainedBody && need <= maxRetainedBody {
		rd.body = nil // shed a one-off high-water mark
	}
	// Grow the body buffer only as bytes actually arrive: a corrupted
	// length field must cost a truncation error, not a giant allocation.
	rd.body = rd.body[:0]
	for len(rd.body) < need {
		n := need - len(rd.body)
		if n > readBodyChunk {
			n = readBodyChunk
		}
		if cap(rd.body)-len(rd.body) < n {
			grown := cap(rd.body) * 2
			if grown < len(rd.body)+n {
				grown = len(rd.body) + n
			}
			if grown > need {
				grown = need
			}
			next := make([]byte, len(rd.body), grown)
			copy(next, rd.body)
			rd.body = next
		}
		chunk := rd.body[len(rd.body) : len(rd.body)+n]
		got, err := io.ReadFull(rd.r, chunk)
		rd.body = rd.body[:len(rd.body)+got]
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return 0, nil, fmt.Errorf("%w: truncated frame", ErrCorrupt)
			}
			return 0, nil, fmt.Errorf("wire: read: %w", err)
		}
	}
	payload = rd.body[:length]
	sum := binary.LittleEndian.Uint32(rd.body[length:])
	if frameCRC(typ, payload) != sum {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return typ, payload, nil
}
