package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// errClass buckets a decode error so the two decoders can be compared on
// semantics rather than message text.
func errClass(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, io.EOF):
		return 1
	case errors.Is(err, ErrCorrupt):
		return 2
	case errors.Is(err, ErrTooLarge):
		return 3
	default:
		return 4
	}
}

// decodeAll drains a stream with one decoder, copying each payload (the
// Reader invalidates its payload on the next read) and recording the
// terminating error class.
func decodeAll(next func() (byte, []byte, error)) (typs []byte, payloads [][]byte, final int) {
	for {
		typ, payload, err := next()
		if err != nil {
			return typs, payloads, errClass(err)
		}
		typs = append(typs, typ)
		payloads = append(payloads, append([]byte(nil), payload...))
	}
}

// FuzzReadFrameReuse pins the pooled Reader byte-identical to the naive
// ReadFrame on arbitrary streams: same frames, same payload bytes, same
// terminating error class. The two are deliberately independent
// implementations — this harness is what lets the zero-allocation decoder
// replace the reference one at every call site.
func FuzzReadFrameReuse(f *testing.F) {
	var seed []byte
	seed, _ = AppendFrame(seed, FrameExec, []byte("find 1 in R"))
	seed, _ = AppendFrame(seed, FrameQuit, nil)
	seed, _ = AppendFrame(seed, FrameResponse, bytes.Repeat([]byte("tuple "), 100))
	f.Add(seed)
	f.Add(seed[:len(seed)-3])                               // torn tail
	f.Add([]byte{FrameExec, 0, 0, 0})                       // truncated header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // oversize length
	corrupt := append([]byte(nil), seed...)
	corrupt[7] ^= 0x40 // flip a payload bit: CRC must catch it
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		naiveSrc := bytes.NewReader(data)
		nTyps, nPayloads, nErr := decodeAll(func() (byte, []byte, error) {
			return ReadFrame(naiveSrc)
		})
		rd := NewReader(bytes.NewReader(data))
		rTyps, rPayloads, rErr := decodeAll(rd.Next)

		if nErr != rErr {
			t.Fatalf("error class diverged: naive=%d reader=%d", nErr, rErr)
		}
		if !bytes.Equal(nTyps, rTyps) {
			t.Fatalf("frame types diverged: naive=%x reader=%x", nTyps, rTyps)
		}
		for i := range nPayloads {
			if !bytes.Equal(nPayloads[i], rPayloads[i]) {
				t.Fatalf("payload %d diverged:\nnaive  %x\nreader %x", i, nPayloads[i], rPayloads[i])
			}
		}
	})
}
