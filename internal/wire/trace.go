package wire

import (
	"encoding/binary"
	"fmt"

	"funcdb/internal/value"
)

// Request-trace context codecs (protocol version 5).
//
// A traced request carries a fixed-size suffix after its normal payload:
//
//	tracectx := id:uint64le hop:uint8 flags:uint8     (10 bytes)
//
// flags bit 0 is the sampled bit; the other bits must be zero. Because
// every version-4 payload is self-delimiting (explicit counts and
// length-prefixed strings everywhere), the suffix needs no announcement
// on the client-facing frames: after the version-4 fields, exactly zero
// or exactly ten bytes remain, and anything else is corrupt. The
// Forward frames already own a flag byte, so there the suffix is
// announced by FwdTrace and placed after the FwdEpoch suffix — same
// shape as the version-3 epoch transition. Either way, an un-traced
// frame is byte-identical to its version-4 encoding, and a sender
// stamps the suffix only toward peers that negotiated version 5.

// TraceCtxLen is the wire size of a trace-context suffix.
const TraceCtxLen = 10

// ctxSampled is the sampled bit in the suffix flag byte.
const ctxSampled = 1 << 0

// TraceCtx is the propagated trace context: which trace a request
// belongs to, how many forward hops it has taken, and whether the
// origin sampled it for publication.
type TraceCtx struct {
	ID      uint64
	Hop     uint8
	Sampled bool
}

// Valid reports whether the context names a trace (id 0 means
// "untraced" on the wire and never leaves a recorder).
func (c TraceCtx) Valid() bool { return c.ID != 0 }

// AppendTraceCtx appends the 10-byte suffix.
func AppendTraceCtx(dst []byte, tc TraceCtx) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, tc.ID)
	var flags byte
	if tc.Sampled {
		flags |= ctxSampled
	}
	return append(dst, tc.Hop, flags)
}

// DecodeTraceCtx decodes a suffix that must occupy buf exactly.
func DecodeTraceCtx(buf []byte) (TraceCtx, error) {
	if len(buf) != TraceCtxLen {
		return TraceCtx{}, fmt.Errorf("%w: trace context is %d bytes, want %d", ErrCorrupt, len(buf), TraceCtxLen)
	}
	flags := buf[9]
	if flags&^byte(ctxSampled) != 0 {
		return TraceCtx{}, fmt.Errorf("%w: bad trace flags %#x", ErrCorrupt, flags)
	}
	return TraceCtx{
		ID:      binary.LittleEndian.Uint64(buf),
		Hop:     buf[8],
		Sampled: flags&ctxSampled != 0,
	}, nil
}

// decodeCtxTail interprets a decoder core's unconsumed tail: empty means
// untraced, exactly TraceCtxLen means a suffix, anything else is corrupt.
func decodeCtxTail(rest []byte) (TraceCtx, error) {
	if len(rest) == 0 {
		return TraceCtx{}, nil
	}
	if len(rest) != TraceCtxLen {
		return TraceCtx{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return DecodeTraceCtx(rest)
}

// AppendExecT encodes a FrameExec payload with a trace-context suffix.
// Callers with no context to stamp use AppendExec — the two differ only
// by the suffix.
func AppendExecT(dst []byte, id uint64, query string, tc TraceCtx) []byte {
	return AppendTraceCtx(AppendExec(dst, id, query), tc)
}

// DecodeExecT decodes a FrameExec payload with an optional trace-context
// suffix; tc is the zero TraceCtx (Valid() == false) when absent.
func DecodeExecT(buf []byte) (id uint64, query string, tc TraceCtx, err error) {
	id, query, rest, err := decodeExecTail(buf)
	if err == nil {
		tc, err = decodeCtxTail(rest)
	}
	if err != nil {
		return 0, "", TraceCtx{}, err
	}
	return id, query, tc, nil
}

// AppendBatchT encodes a FrameBatch payload with a trace-context suffix.
func AppendBatchT(dst []byte, id uint64, queries []string, tc TraceCtx) []byte {
	return AppendTraceCtx(AppendBatch(dst, id, queries), tc)
}

// DecodeBatchT decodes a FrameBatch payload with an optional
// trace-context suffix.
func DecodeBatchT(buf []byte) (id uint64, queries []string, tc TraceCtx, err error) {
	id, queries, rest, err := decodeBatchTail(buf)
	if err == nil {
		tc, err = decodeCtxTail(rest)
	}
	if err != nil {
		return 0, nil, TraceCtx{}, err
	}
	return id, queries, tc, nil
}

// AppendExecPreparedT encodes a FrameExecPrepared payload with a
// trace-context suffix.
func AppendExecPreparedT(dst []byte, id, stmt uint64, args []value.Item, tc TraceCtx) ([]byte, error) {
	dst, err := AppendExecPrepared(dst, id, stmt, args)
	if err != nil {
		return dst, err
	}
	return AppendTraceCtx(dst, tc), nil
}

// DecodeExecPreparedIntoT decodes a FrameExecPrepared payload with an
// optional trace-context suffix, under DecodeExecPreparedInto's scratch
// contract.
func DecodeExecPreparedIntoT(buf []byte, scratch []value.Item) (id, stmt uint64, args []value.Item, tc TraceCtx, err error) {
	id, stmt, args, rest, err := decodeExecPreparedTail(buf, scratch)
	if err == nil {
		tc, err = decodeCtxTail(rest)
	}
	if err != nil {
		return 0, 0, nil, TraceCtx{}, err
	}
	return id, stmt, args, tc, nil
}

// AppendBatchPreparedT encodes a FrameBatchPrepared payload with a
// trace-context suffix.
func AppendBatchPreparedT(dst []byte, id uint64, calls []PreparedCall, tc TraceCtx) ([]byte, error) {
	dst, err := AppendBatchPrepared(dst, id, calls)
	if err != nil {
		return dst, err
	}
	return AppendTraceCtx(dst, tc), nil
}

// DecodeBatchPreparedIntoT decodes a FrameBatchPrepared payload with an
// optional trace-context suffix, under DecodeBatchPreparedInto's scratch
// contract.
func DecodeBatchPreparedIntoT(buf []byte, calls []PreparedCall, items []value.Item) (id uint64, outCalls []PreparedCall, outItems []value.Item, tc TraceCtx, err error) {
	id, outCalls, outItems, rest, err := decodeBatchPreparedTail(buf, calls, items)
	if err == nil {
		tc, err = decodeCtxTail(rest)
	}
	if err != nil {
		return 0, nil, nil, TraceCtx{}, err
	}
	return id, outCalls, outItems, tc, nil
}

// AppendForwardT encodes a FrameForward payload whose suffixes follow
// its flags: the epoch varint iff FwdEpoch, then the trace context iff
// FwdTrace. With neither flag the bytes match AppendForward exactly.
func AppendForwardT(dst []byte, id uint64, flags byte, epoch uint64, tc TraceCtx, stmts []ForwardStmt) []byte {
	dst = AppendForwardE(dst, id, flags, epoch, stmts)
	if flags&FwdTrace != 0 {
		dst = AppendTraceCtx(dst, tc)
	}
	return dst
}

// DecodeForwardT decodes a FrameForward payload together with both
// optional suffixes. tc is meaningful only when flags&FwdTrace is set.
func DecodeForwardT(buf []byte) (id uint64, flags byte, epoch uint64, tc TraceCtx, stmts []ForwardStmt, err error) {
	id, flags, epoch, stmts, rest, err := decodeForwardTail(buf)
	if err != nil {
		return 0, 0, 0, TraceCtx{}, nil, err
	}
	if flags&FwdTrace != 0 {
		tc, err = DecodeTraceCtx(rest)
	} else if len(rest) != 0 {
		err = fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	if err != nil {
		return 0, 0, 0, TraceCtx{}, nil, err
	}
	return id, flags, epoch, tc, stmts, nil
}

// AppendForwardPreparedT encodes a FrameForwardPrepared payload with the
// same flag-driven suffix order as AppendForwardT.
func AppendForwardPreparedT(dst []byte, id uint64, flags byte, epoch uint64, tc TraceCtx, stmts []PreparedFwdStmt) ([]byte, error) {
	dst, err := AppendForwardPrepared(dst, id, flags, epoch, stmts)
	if err != nil {
		return dst, err
	}
	if flags&FwdTrace != 0 {
		dst = AppendTraceCtx(dst, tc)
	}
	return dst, nil
}

// DecodeForwardPreparedIntoT decodes a FrameForwardPrepared payload with
// both optional suffixes, under DecodeForwardPreparedInto's scratch
// contract. tc is meaningful only when flags&FwdTrace is set.
func DecodeForwardPreparedIntoT(buf []byte, stmts []PreparedFwdStmt, items []value.Item) (id uint64, flags byte, epoch uint64, tc TraceCtx, outStmts []PreparedFwdStmt, outItems []value.Item, err error) {
	id, flags, epoch, outStmts, outItems, rest, err := decodeForwardPreparedTail(buf, stmts, items)
	if err != nil {
		return 0, 0, 0, TraceCtx{}, nil, nil, err
	}
	if flags&FwdTrace != 0 {
		tc, err = DecodeTraceCtx(rest)
	} else if len(rest) != 0 {
		err = fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	if err != nil {
		return 0, 0, 0, TraceCtx{}, nil, nil, err
	}
	return id, flags, epoch, tc, outStmts, outItems, nil
}

// AppendTraces encodes a FrameTraces payload: just the request id.
func AppendTraces(dst []byte, id uint64) []byte {
	return binary.AppendUvarint(dst, id)
}

// DecodeTraces decodes a FrameTraces payload.
func DecodeTraces(buf []byte) (id uint64, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 || n != len(buf) {
		return 0, fmt.Errorf("%w: bad traces id", ErrCorrupt)
	}
	return id, nil
}

// AppendTracesResponse encodes a FrameTracesResponse payload:
//
//	traces := id:uvarint doc:bytes…
//
// doc is a JSON-encoded []reqtrace.Trace and runs to the end of the
// payload, exactly like a stats response.
func AppendTracesResponse(dst []byte, id uint64, doc []byte) []byte {
	dst = binary.AppendUvarint(dst, id)
	return append(dst, doc...)
}

// DecodeTracesResponse decodes a FrameTracesResponse payload. The
// returned doc aliases buf.
func DecodeTracesResponse(buf []byte) (id uint64, doc []byte, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad traces id", ErrCorrupt)
	}
	return id, buf[n:], nil
}
