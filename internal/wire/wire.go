// Package wire is the framed network protocol between a funcdb client
// and fdbserver: the session layer's statement/response stream given a
// byte encoding.
//
// Framing reuses the archive's record discipline — the one piece of this
// repository that already survives torn writes and corruption:
//
//	frame := type:uint8 length:uint32le payload crc:uint32le
//
// The CRC (IEEE 802.3) covers the type byte and the payload, so a frame
// whose length field is corrupted fails its checksum instead of being
// misparsed, and MaxFrameLen bounds allocation on corrupt lengths.
//
// Every request frame carries a client-chosen request id, echoed on the
// response frame. Ids make pipelining out-of-order-safe: a client may
// have any number of requests in flight and match responses by id, in
// whatever order they arrive — the server happens to reply in admission
// order, but nothing in the protocol depends on it.
//
// Conversation shape:
//
//	client → FrameHello  (magic, protocol version, origin tag)
//	server → FrameWelcome (protocol version, lane count, durable flag)
//	client → FrameExec | FrameBatch ...   (pipelined freely)
//	server → FrameResponse | FrameBatchResponse | FrameError ...
//	client → FrameQuit, then closes
//
// One FrameBatch is one admission batch: the server translates the whole
// frame and feeds it to the store in a single lane-split SubmitBatch, so
// a network-sized batch pays one arbitration, exactly like an in-process
// ExecBatch.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame types. Values deliberately do not overlap the archive's record
// types (1–3): a frame stream fed to an archive reader (or vice versa)
// fails fast on type, not just CRC.
const (
	// FrameHello opens a connection (client → server): magic, protocol
	// version, origin tag.
	FrameHello byte = 0x10
	// FrameWelcome acknowledges Hello (server → client): protocol
	// version, lane count, durable flag.
	FrameWelcome byte = 0x11
	// FrameExec submits one statement: request id, query text.
	FrameExec byte = 0x12
	// FrameBatch submits n statements as one admission batch: request
	// id, count, query texts.
	FrameBatch byte = 0x13
	// FrameResponse answers FrameExec: request id, encoded response.
	FrameResponse byte = 0x14
	// FrameBatchResponse answers FrameBatch: request id, count, encoded
	// responses in statement order.
	FrameBatchResponse byte = 0x15
	// FrameError reports a request that was never admitted (translation
	// or bind failure): request id, failing statement index (-1 for a
	// non-batch request), message.
	FrameError byte = 0x16
	// FrameQuit announces a clean client close.
	FrameQuit byte = 0x17

	// Cluster frames (protocol version 2). Forward carries pre-tagged
	// statements between cluster peers (and from cluster-aware clients
	// straight to a relation's owner); Redirect bounces a misrouted
	// Forward back with the owner's address; Subscribe switches a
	// connection into a log-shipping stream of LogRecord frames.

	// FrameForward executes pre-tagged statements: request id, flags,
	// count, then (origin, seq, query) per statement. Unlike FrameExec,
	// the receiver must NOT retag — the sender owns the tag space, which
	// is what keeps a forwarded statement's response byte-identical to
	// local execution. Answered by FrameResponse (one statement),
	// FrameBatchResponse (several), FrameError, or FrameRedirect.
	FrameForward byte = 0x18
	// FrameRedirect answers a Forward for a relation this node does not
	// own when the sender asked not to chain (FwdNoForward): request id,
	// owner address, relation. Clients cache the placement and chase at
	// most one redirect.
	FrameRedirect byte = 0x19
	// FrameSubscribe asks the server to stream its committed-transaction
	// log: the records with sequence > after. After this frame the
	// server pushes LogRecord frames until either side closes.
	FrameSubscribe byte = 0x1a
	// FrameLogRecord carries one committed transaction in the archive's
	// log-record payload encoding (internal/archive recTxn): the
	// replication stream is the durability log, reframed for the wire.
	FrameLogRecord byte = 0x1b
	// FrameStats asks the server for its metrics snapshot: request id.
	FrameStats byte = 0x1c
	// FrameStatsResponse answers FrameStats: request id, then the snapshot
	// as a JSON document (internal/metrics.Snapshot). JSON rather than a
	// bespoke binary layout: the snapshot is introspection, not a hot
	// path, its schema grows with every instrumented layer, and the same
	// bytes feed fdbrepl, fdbload and the --debug-addr HTTP endpoint.
	FrameStatsResponse byte = 0x1d

	// Failover frames (protocol version 3). Heartbeats carry each node's
	// view of the cluster's epochs and applied sequences; SubAck lets a
	// log subscriber acknowledge applied records (the primary's
	// replication ack gate); LogRecordE is a LogRecord stamped with the
	// serving epoch so a stream from a deposed primary is detectable.

	// FrameHeartbeat carries one node's failover view (epoch, owner,
	// applied-seq and promotion-base vectors) to a peer. Answered by
	// FrameHeartbeatAck; either direction refreshes the peer's lease.
	FrameHeartbeat byte = 0x1e
	// FrameHeartbeatAck answers FrameHeartbeat with the receiver's own
	// view — the same payload encoding.
	FrameHeartbeatAck byte = 0x1f
	// FrameSubAck flows from a log subscriber back to the serving node:
	// the highest record sequence the subscriber has applied. It is the
	// only frame a subscriber sends after Subscribe, and the primary's
	// write-ack gate waits on it.
	FrameSubAck byte = 0x20
	// FrameLogRecordE is FrameLogRecord prefixed with the serving node's
	// epoch for the streamed slot: a subscriber that knows a higher epoch
	// drops the stream instead of applying a deposed primary's records.
	FrameLogRecordE byte = 0x21

	// Prepared-statement frames (protocol version 4). A client ships query
	// text once (Prepare), the server plans it into its statement cache and
	// answers with a dense statement id (Prepared), and every later call
	// ships id + positional args only (ExecPrepared/BatchPrepared) — no
	// text on the wire, no lexer or parser on the server's hot path.
	// ForwardPrepared is the pre-tagged cluster form: statements resolve by
	// the FNV-1a hash of their text (optionally carrying the text for
	// first-contact registration) so the owning node can resolve the plan
	// or demand a re-prepare with ErrUnknownStmt.

	// FramePrepare registers query text (client → server): request id,
	// query text. Answered by FramePrepared or FrameError.
	FramePrepare byte = 0x22
	// FramePrepared answers FramePrepare: request id, dense statement id,
	// parameter count.
	FramePrepared byte = 0x23
	// FrameExecPrepared submits one prepared statement: request id,
	// statement id, positional args. A statement id the server no longer
	// holds (eviction, create-invalidation, restart) is answered with a
	// FrameError carrying query.ErrUnknownStmt's text — never a stale
	// plan — and the client transparently re-prepares.
	FrameExecPrepared byte = 0x24
	// FrameBatchPrepared submits n prepared statements as one admission
	// batch: request id, count, then (statement id, args) per statement.
	FrameBatchPrepared byte = 0x25
	// FrameForwardPrepared is FrameForward for prepared statements:
	// request id, flags (same bits, FwdEpoch trailing epoch included),
	// count, then per statement (origin, seq, statement id, text hash,
	// optional text, args). The receiver resolves statement id → hash →
	// text against its node-wide cache; a statement that resolves nowhere
	// fails with ErrUnknownStmt so the sender can re-send with text.
	FrameForwardPrepared byte = 0x26

	// Request-tracing frames (protocol version 5). Traced requests carry a
	// fixed 10-byte trace-context suffix (trace id, hop, flags) on the
	// execution frames — detected by exact trailing length on the
	// client-facing frames, announced by FwdTrace on forwards — so one
	// trace id stitches client → gateway → owner → mirror. The Traces
	// frame fetches a node's published trace buffers, mirroring Stats.

	// FrameTraces asks the server for its recorded request traces:
	// request id. Answered by FrameTracesResponse (or FrameError when the
	// node records none).
	FrameTraces byte = 0x27
	// FrameTracesResponse answers FrameTraces: request id, then the
	// node's traces as a JSON array (internal/reqtrace.Trace). JSON for
	// the same reason as Stats: introspection, not a hot path, and the
	// same bytes feed fdbrepl, fdbload and /debug/trace.
	FrameTracesResponse byte = 0x28
)

// Forward flag bits.
const (
	// FwdNoForward asks the receiver to answer a misrouted statement with
	// FrameRedirect instead of forwarding it onward — set by cluster
	// clients (which chase redirects and cache placement) and on
	// node-to-node forwards (bounding any chain at one hop).
	FwdNoForward byte = 1 << 0
	// FwdReadLocal lets a non-owner serve read-only statements from its
	// local replica, stamping Response.Version with the replica's applied
	// version so the client observes its staleness bound.
	FwdReadLocal byte = 1 << 1
	// FwdEpoch marks a Forward payload that carries a trailing epoch
	// varint (protocol version 3): the sender's belief about the slot's
	// serving epoch. A receiver with a higher epoch rejects the frame —
	// the fence that stops a deposed primary's gateway traffic.
	FwdEpoch byte = 1 << 2
	// FwdTrace marks a Forward payload that carries a trailing 10-byte
	// trace-context suffix (protocol version 5), placed AFTER the FwdEpoch
	// suffix when both are present: the gateway's trace id rides to the
	// owner so the owner's spans join the same timeline. Never set toward
	// a pre-v5 peer.
	FwdTrace byte = 1 << 3
)

const (
	// Magic identifies a funcdb wire connection ("fDBw"; the archive
	// files use "fDBa").
	Magic = "fDBw"
	// Version is the protocol revision; Hello/Welcome carry it. Version 2
	// added the Hello/Welcome database-name field (one listener, many
	// stores) and the cluster frames; version-1 peers are still accepted
	// and default to database "main". Version 3 adds the failover frames
	// (Heartbeat, SubAck, LogRecordE), the FwdEpoch flag, the optional
	// Redirect epoch, and the extended Subscribe (slot + subscriber id) —
	// all additive, so version-2 peers interoperate for non-failover
	// traffic. Version 4 adds the prepared-statement frames
	// (Prepare/Prepared/ExecPrepared/BatchPrepared/ForwardPrepared);
	// every version-3 encoding is byte-identical under version 4 (the new
	// frames are purely additive), so version-3 peers interoperate for
	// text traffic and clients gate prepared use on the Welcome version.
	// Version 5 adds request tracing: the Traces frames and an optional
	// 10-byte trace-context suffix on Exec/Batch/ExecPrepared/
	// BatchPrepared (detected by exact trailing length — every v4 payload
	// is self-delimiting) and on Forward/ForwardPrepared (announced by the
	// FwdTrace flag, after the FwdEpoch suffix). Un-traced encodings stay
	// byte-identical to version 4, and senders stamp the suffix only
	// toward peers that negotiated version 5 — version-4 peers
	// interoperate untraced.
	Version = 5
	// MaxFrameLen caps a frame's payload: large enough for any realistic
	// batch or scan response, small enough to bound what a corrupt
	// length field can make a peer allocate.
	MaxFrameLen = 1 << 26 // 64 MiB
	// frameOverhead is the framing cost per frame: type + length + CRC.
	frameOverhead = 1 + 4 + 4
)

// ErrCorrupt reports an undecodable frame or payload.
var ErrCorrupt = errors.New("wire: corrupt frame")

// ErrTooLarge reports a frame the protocol refuses to carry.
var ErrTooLarge = errors.New("wire: frame exceeds size limit")

// typCRCSeed[t] is the frame checksum state after hashing just the type
// byte, precomputed for every possible type. The hot path must not
// materialize a 1-byte slice for the type: hash/crc32 dispatches Update
// through an indirect function, so escape analysis heap-allocates any
// stack array passed to it — exactly the per-frame garbage this codec
// exists to remove.
var typCRCSeed = func() (seeds [256]uint32) {
	b := make([]byte, 1)
	for i := range seeds {
		b[0] = byte(i)
		seeds[i] = crc32.Update(0, crc32.IEEETable, b)
	}
	return
}()

// frameCRC computes the frame checksum over the type byte and payload
// against the IEEE table directly — no digest object, no temporary
// []byte{typ}, nothing the steady state has to allocate.
func frameCRC(typ byte, payload []byte) uint32 {
	return crc32.Update(typCRCSeed[typ], crc32.IEEETable, payload)
}

// AppendFrame appends one framed message to dst.
func AppendFrame(dst []byte, typ byte, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrameLen {
		return dst, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, frameCRC(typ, payload)), nil
}

// BeginFrame opens a frame in dst: the type byte and a length placeholder
// are appended, and the caller then appends the payload bytes directly —
// no staging buffer, no payload copy. The returned mark is the frame's
// offset in dst; seal it with EndFrame(dst, mark). Frames nest head to
// tail: a caller may Begin/End several frames in one buffer and hand the
// whole batch to a single Write.
func BeginFrame(dst []byte, typ byte) ([]byte, int) {
	mark := len(dst)
	dst = append(dst, typ, 0, 0, 0, 0)
	return dst, mark
}

// EndFrame seals a frame opened by BeginFrame: everything appended to dst
// since is the payload. The length field is patched in place and the CRC
// appended. On error (payload over MaxFrameLen) the frame is removed from
// dst — the returned slice is the buffer exactly as it was before
// BeginFrame, so the caller's batch stays well-formed.
func EndFrame(dst []byte, mark int) ([]byte, error) {
	payload := dst[mark+frameOverhead-4:]
	if len(payload) > MaxFrameLen {
		return dst[:mark], fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	binary.LittleEndian.PutUint32(dst[mark+1:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(dst, frameCRC(dst[mark], payload)), nil
}

// WriteFrame writes one framed message through a pooled encode buffer:
// the steady state — including a nil or empty payload (FrameQuit, a
// FrameStats request) — allocates nothing.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	b := GetBuf()
	defer PutBuf(b)
	var err error
	if b.B, err = AppendFrame(b.B, typ, payload); err != nil {
		return err
	}
	_, err = w.Write(b.B)
	return err
}

// ReadFrame reads one framed message into a fresh buffer. io.EOF means
// the peer closed cleanly between frames; a close mid-frame surfaces as
// ErrCorrupt.
//
// ReadFrame allocates per call and is deliberately kept as the naive
// reference decoder: FuzzReadFrameReuse pins the pooled Reader
// byte-identical against it, so the two must stay independent
// implementations. Per-connection read loops use a Reader, which reuses
// one body buffer across frames.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: read: %w", err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: truncated frame", ErrCorrupt)
		}
		return 0, nil, fmt.Errorf("wire: read: %w", err)
	}
	typ = hdr[0]
	length := binary.LittleEndian.Uint32(hdr[1:])
	if length > MaxFrameLen {
		return 0, nil, fmt.Errorf("%w: length %d", ErrTooLarge, length)
	}
	// Grow the body buffer only as bytes actually arrive: a corrupted
	// length field must cost a truncation error, not a giant allocation.
	var body bytes.Buffer
	if _, err := io.CopyN(&body, r, int64(length)+4); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, fmt.Errorf("%w: truncated frame", ErrCorrupt)
		}
		return 0, nil, fmt.Errorf("wire: read: %w", err)
	}
	b := body.Bytes()
	payload, sum := b[:length], binary.LittleEndian.Uint32(b[length:])
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	if crc.Sum32() != sum {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return typ, payload, nil
}
