package wire

import (
	"bytes"
	"testing"
)

func TestStatsRoundTrip(t *testing.T) {
	for _, id := range []uint64{0, 1, 42, 1 << 40} {
		buf := AppendStats(nil, id)
		got, err := DecodeStats(buf)
		if err != nil || got != id {
			t.Fatalf("stats id %d round-trip: got %d, err %v", id, got, err)
		}
	}
	if _, err := DecodeStats(nil); err == nil {
		t.Error("empty stats payload must not decode")
	}
	if _, err := DecodeStats(append(AppendStats(nil, 7), 0)); err == nil {
		t.Error("trailing bytes after stats id must not decode")
	}
}

func TestStatsResponseRoundTrip(t *testing.T) {
	doc := []byte(`{"version":12,"lanes":8}`)
	buf := AppendStatsResponse(nil, 9, doc)
	id, got, err := DecodeStatsResponse(buf)
	if err != nil || id != 9 || !bytes.Equal(got, doc) {
		t.Fatalf("stats response round-trip: id=%d doc=%q err=%v", id, got, err)
	}
	// An empty document is legal: the id alone must survive.
	id, got, err = DecodeStatsResponse(AppendStatsResponse(nil, 3, nil))
	if err != nil || id != 3 || len(got) != 0 {
		t.Fatalf("empty-doc round-trip: id=%d doc=%q err=%v", id, got, err)
	}
	if _, _, err := DecodeStatsResponse(nil); err == nil {
		t.Error("empty stats response payload must not decode")
	}
}

// FuzzDecodeStats: stats requests arrive from untrusted clients; both
// codec halves must decode or fail cleanly, and whatever decodes must
// survive a re-encode/re-decode round trip.
func FuzzDecodeStats(f *testing.F) {
	f.Add(AppendStats(nil, 0))
	f.Add(AppendStats(nil, 7))
	f.Add(AppendStats(nil, 1<<63))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if id, err := DecodeStats(data); err == nil {
			// A non-canonical varint may re-encode shorter, but it must
			// still round-trip to the same id.
			if id2, err := DecodeStats(AppendStats(nil, id)); err != nil || id2 != id {
				t.Fatalf("stats id re-decode diverged: %d vs %d (%v)", id, id2, err)
			}
		}
		id, doc, err := DecodeStatsResponse(data)
		if err != nil {
			return
		}
		id2, doc2, err := DecodeStatsResponse(AppendStatsResponse(nil, id, doc))
		if err != nil || id2 != id || !bytes.Equal(doc2, doc) {
			t.Fatalf("stats response re-decode diverged: %v", err)
		}
	})
}
