package archive

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"funcdb/internal/core"
	"funcdb/internal/value"
)

// The crash-recovery matrix: a group-commit window is one contiguous
// multi-frame write, and a kill can land at any byte of it. Each case
// below carves the log tail at a different offset — a clean frame
// boundary, one byte into a frame, mid-payload, inside the trailing CRC,
// or before any frame landed — and recovery must come back to a *prefix*
// of the lane-serialized version order: some version v with 0 <= v <= N,
// whose contents equal the uncorrupted archive's VersionAt(v), never a
// torn or reordered state.

// buildLaneArchive commits n writes from concurrent writers through a
// sharded (4-lane) engine into a group-commit archive in dir, flushing the
// whole window in one batch at Close. It returns the last durable version
// number (== n: the sequencer re-serializes lane commits densely).
func buildLaneArchive(t *testing.T, dir string, n int) int64 {
	t.Helper()
	a, err := Create(dir, initialDB("A", "B", "C", "D"), GroupCommit(time.Hour), Fsync(true))
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(initialDB("A", "B", "C", "D"),
		core.WithLanes(4), core.WithCommitObserver(a.Observer()))

	rels := []string{"A", "B", "C", "D"}
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		// Writer w commits the keys congruent to w mod writers, so the
		// total is exactly n for any n.
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < n; k += writers {
				e.Submit(core.Insert(rels[w], value.NewTuple(value.Int(int64(k)), value.Str("v"))))
			}
		}(w)
	}
	wg.Wait()
	e.Barrier()
	if err := a.Close(); err != nil { // flushes the window: one multi-frame write
		t.Fatal(err)
	}
	return int64(n)
}

// frameOffsets parses a log segment and returns the byte offset just past
// the header and past each subsequent frame, so the matrix can cut at
// exact frame boundaries and at points inside a frame.
func frameOffsets(t *testing.T, path string) []int64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd := &reader{r: f}
	var offs []int64
	for {
		_, err := rd.next()
		if errors.Is(err, io.EOF) {
			return offs
		}
		if err != nil {
			t.Fatalf("pristine log does not parse: %v", err)
		}
		offs = append(offs, rd.off)
	}
}

// copyArchiveDir clones a pristine archive directory so each matrix case
// corrupts its own copy.
func copyArchiveDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestCrashRecoveryMatrix(t *testing.T) {
	const commits = 40
	pristine := t.TempDir()
	lastSeq := buildLaneArchive(t, pristine, commits)

	logPath := filepath.Join(pristine, logName(0))
	offs := frameOffsets(t, logPath)
	// offs[0] is just past the header; offs[k] is just past frame k.
	if len(offs) != commits+1 {
		t.Fatalf("pristine log has %d frames, want %d+header", len(offs), commits)
	}
	headerEnd := offs[0]
	lastFrameStart := offs[len(offs)-2]
	lastFrameEnd := offs[len(offs)-1]
	frameLen := lastFrameEnd - lastFrameStart

	cases := []struct {
		name string
		cut  int64 // truncate the log to this byte length
		want int64 // exact version recovery must land on; -1 = any prefix
	}{
		{"empty-tail/header-only", headerEnd, 0},
		{"empty-tail/no-header", headerEnd - 2, 0},
		{"frame-boundary/half-window", offs[commits/2], int64(commits / 2)},
		{"frame-boundary/all-but-one", lastFrameStart, lastSeq - 1},
		{"truncated-frame/type-byte-only", lastFrameStart + 1, lastSeq - 1},
		{"truncated-frame/mid-length", lastFrameStart + 3, lastSeq - 1},
		{"truncated-frame/mid-payload", lastFrameStart + frameLen/2, lastSeq - 1},
		{"torn-crc/first-crc-byte", lastFrameEnd - 4, lastSeq - 1},
		{"torn-crc/last-byte-missing", lastFrameEnd - 1, lastSeq - 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := copyArchiveDir(t, pristine)
			if err := os.Truncate(filepath.Join(dir, logName(0)), tc.cut); err != nil {
				t.Fatal(err)
			}

			got, err := Recover(dir)
			if err != nil {
				t.Fatalf("recovery failed on a torn tail: %v", err)
			}
			v := got.Version()
			if v < 0 || v > lastSeq {
				t.Fatalf("recovered version %d outside [0, %d]", v, lastSeq)
			}
			if tc.want >= 0 && v != tc.want {
				t.Fatalf("recovered version %d, want %d", v, tc.want)
			}
			// The recovered state must be exactly the pristine stream's
			// version v — a prefix of the lane-serialized order, nothing
			// torn, nothing reordered.
			want, err := VersionAt(pristine, v)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("recovered contents differ from pristine version %d", v)
			}

			// The archive must also reopen for appending after the torn
			// tail is truncated away, and new commits must land behind the
			// recovered prefix.
			a, db, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after torn tail: %v", err)
			}
			if db.Version() != v {
				t.Fatalf("reopen recovered version %d, want %d", db.Version(), v)
			}
			e := core.NewEngine(db, core.WithCommitObserver(a.Observer()))
			e.Submit(core.Insert("A", value.NewTuple(value.Int(9999), value.Str("post-crash"))))
			e.Barrier()
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if re.Version() != v+1 {
				t.Fatalf("post-crash append recovered at %d, want %d", re.Version(), v+1)
			}
		})
	}
}

// TestCrashRecoveryMidStreamCorruptionIsFatal pins the matrix's boundary:
// a cut tail is recoverable, but a *mid-stream* checksum failure (bit rot
// inside the window, with valid frames after it) must refuse recovery
// rather than silently drop committed transactions.
func TestCrashRecoveryMidStreamCorruptionIsFatal(t *testing.T) {
	pristine := t.TempDir()
	buildLaneArchive(t, pristine, 12)
	dir := copyArchiveDir(t, pristine)
	logPath := filepath.Join(dir, logName(0))
	offs := frameOffsets(t, logPath)

	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	mid := offs[len(offs)/2] - 2 // inside an interior frame's CRC
	data[mid] ^= 0xFF
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-stream corruption recovered silently (err=%v)", err)
	}
}

// TestCrashRecoveryGroupCommitOffsets sweeps every byte offset of the
// final frame of a small window — the exhaustive version of the matrix's
// spot checks — asserting recovery always lands on one of the two legal
// prefixes (all frames, or all but the torn one).
func TestCrashRecoveryGroupCommitOffsets(t *testing.T) {
	const commits = 6
	pristine := t.TempDir()
	lastSeq := buildLaneArchive(t, pristine, commits)
	offs := frameOffsets(t, filepath.Join(pristine, logName(0)))
	start, end := offs[len(offs)-2], offs[len(offs)-1]

	for cut := start; cut <= end; cut++ {
		dir := copyArchiveDir(t, pristine)
		if err := os.Truncate(filepath.Join(dir, logName(0)), cut); err != nil {
			t.Fatal(err)
		}
		got, err := Recover(dir)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		want := lastSeq - 1
		if cut == end {
			want = lastSeq
		}
		if got.Version() != want {
			t.Fatalf("cut at %d (frame %s): recovered %d, want %d",
				cut, fmt.Sprintf("[%d,%d]", start, end), got.Version(), want)
		}
	}
}
