package archive

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/relation"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// newEngineWithArchive opens a fresh engine whose commits stream into a
// new archive in dir.
func newEngineWithArchive(t *testing.T, dir string, initial *database.Database, opts ...Option) (*core.Engine, *Archive) {
	t.Helper()
	a, err := Create(dir, initial, opts...)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(initial, core.WithCommitObserver(a.Observer()))
	return e, a
}

func initialDB(names ...string) *database.Database {
	return database.New(relation.RepList, names...)
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R", "S"))
	for i := 0; i < 10; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Submit(core.Delete("R", value.Int(3)))
	e.Submit(core.Insert("S", value.NewTuple(value.Str("k"), value.Int(42))))
	e.Barrier()
	want := e.Current()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("recovered version differs: %d tuples vs %d", got.TotalTuples(), want.TotalTuples())
	}
	if got.Version() != want.Version() {
		t.Fatalf("recovered version %d, want %d", got.Version(), want.Version())
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, initialDB("R")); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, initialDB("R")); !errors.Is(err, ErrExists) {
		t.Fatalf("second Create: %v", err)
	}
	if !Exists(dir) {
		t.Error("Exists = false")
	}
	if Exists(t.TempDir()) {
		t.Error("Exists on empty dir")
	}
}

func TestOpenContinuesStream(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"))
	e.Submit(core.Insert("R", value.NewTuple(value.Int(1))))
	e.Submit(core.Insert("R", value.NewTuple(value.Int(2))))
	e.Barrier()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen, append more, recover again: one continuous stream.
	a2, db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.Version() != 2 || db.TotalTuples() != 2 {
		t.Fatalf("reopened at version %d with %d tuples", db.Version(), db.TotalTuples())
	}
	e2 := core.NewEngine(db, core.WithCommitObserver(a2.Observer()))
	e2.Submit(core.Insert("R", value.NewTuple(value.Int(3))))
	e2.Barrier()
	if err := a2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != 3 || got.TotalTuples() != 3 {
		t.Fatalf("final version %d with %d tuples", got.Version(), got.TotalTuples())
	}
}

func TestSnapshotRotationAndVersionAt(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), SnapshotEvery(4))
	const writes = 11
	for i := 1; i <= writes; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)))))
	}
	e.Barrier()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Initial snapshot at 0, then rotations at 4 and 8.
	if len(st.snaps) != 3 {
		t.Fatalf("snapshots at %v", st.snaps)
	}

	// Every version of the stream is reachable on disk.
	for seq := int64(0); seq <= writes; seq++ {
		db, err := VersionAt(dir, seq)
		if err != nil {
			t.Fatalf("VersionAt(%d): %v", seq, err)
		}
		if db.Version() != seq || int64(db.TotalTuples()) != seq {
			t.Fatalf("VersionAt(%d): version %d, %d tuples", seq, db.Version(), db.TotalTuples())
		}
	}
	if _, err := VersionAt(dir, writes+1); err == nil {
		t.Error("future version materialized")
	}
}

func TestCustomCommitForcesSnapshot(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"))
	e.Submit(core.Insert("R", value.NewTuple(value.Int(1), value.Int(10))))
	// A custom transaction has no wire form: the archive must snapshot the
	// version it produces.
	double := func(ctx *eval.Ctx, db *database.Database, after trace.TaskID) (core.Response, *database.Database, trace.Op) {
		rel, _, err := db.Relation(ctx, "R", after)
		if err != nil {
			return core.Response{Err: err}, db, trace.Op{}
		}
		next := db
		for _, tu := range rel.Tuples() {
			doubled := tu.WithField(1, value.Int(2*tu.Field(1).AsInt()))
			next, _, _ = next.Insert(ctx, "R", doubled, after)
		}
		return core.Response{}, next, trace.Op{}
	}
	e.Submit(core.Custom(double, []string{"R"}, []string{"R"}))
	e.Submit(core.Insert("R", value.NewTuple(value.Int(2), value.Int(5))))
	e.Barrier()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.snaps) != 2 || st.snaps[1] != 2 {
		t.Fatalf("snapshots at %v, want [0 2]", st.snaps)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	tu, found, _ := mustRel(t, got, "R").Find(nil, value.Int(1), trace.None)
	if !found || tu.Field(1).AsInt() != 20 {
		t.Fatalf("custom effect lost: %v (found %v)", tu, found)
	}
	if got.Version() != 3 || got.TotalTuples() != 2 {
		t.Fatalf("version %d, %d tuples", got.Version(), got.TotalTuples())
	}
}

func mustRel(t *testing.T, db *database.Database, name string) relation.Relation {
	t.Helper()
	rel, ok := db.RelationFast(name)
	if !ok {
		t.Fatalf("relation %q lost", name)
	}
	return rel
}

func TestTornTailIsTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"))
	for i := 1; i <= 5; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)))))
	}
	e.Barrier()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record, as a crash mid-append would.
	logPath := filepath.Join(dir, logName(0))
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	a2, db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.Version() != 4 || db.TotalTuples() != 4 {
		t.Fatalf("recovered version %d with %d tuples, want 4", db.Version(), db.TotalTuples())
	}
	// The torn bytes must be gone so appends continue a clean stream.
	e2 := core.NewEngine(db, core.WithCommitObserver(a2.Observer()))
	e2.Submit(core.Insert("R", value.NewTuple(value.Int(50))))
	e2.Barrier()
	if err := a2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != 5 || got.TotalTuples() != 5 {
		t.Fatalf("after reopen: version %d, %d tuples", got.Version(), got.TotalTuples())
	}
}

// TestRecoveryFallsBackToOlderSnapshot corrupts the newest snapshot:
// recovery must rebuild the same version from the older snapshot plus the
// chained log segments (every encodable commit is logged across
// rotations, so nothing is lost).
func TestRecoveryFallsBackToOlderSnapshot(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), SnapshotEvery(3))
	for i := 1; i <= 8; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)))))
	}
	e.Barrier()
	want := e.Current()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := st.snaps[len(st.snaps)-1] // snapshots at 0, 3, 6
	buf, err := os.ReadFile(filepath.Join(dir, snapName(newest)))
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-2] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, snapName(newest)), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := Recover(dir)
	if err != nil {
		t.Fatalf("fallback recovery failed: %v", err)
	}
	if !got.Equal(want) || got.Version() != want.Version() {
		t.Fatalf("fallback recovered version %d with %d tuples, want %d/%d",
			got.Version(), got.TotalTuples(), want.Version(), want.TotalTuples())
	}
	// And the archive still opens for appending.
	a2, db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.Version() != want.Version() {
		t.Fatalf("reopened at %d", db.Version())
	}
	if err := a2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryReportsUnbridgeableCustomGap corrupts a snapshot that was
// the only record of a custom commit: recovery must fail loudly, not
// silently drop the commit.
func TestRecoveryReportsUnbridgeableCustomGap(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"))
	e.Submit(core.Insert("R", value.NewTuple(value.Int(1))))
	noop := func(ctx *eval.Ctx, db *database.Database, after trace.TaskID) (core.Response, *database.Database, trace.Op) {
		next, _, _ := db.Insert(ctx, "R", value.NewTuple(value.Int(99)), after)
		return core.Response{}, next, trace.Op{}
	}
	e.Submit(core.Custom(noop, []string{"R"}, []string{"R"})) // snapshot at 2
	e.Submit(core.Insert("R", value.NewTuple(value.Int(3))))
	e.Barrier()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(dir, snapName(2)))
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-2] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, snapName(2)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil {
		t.Fatal("recovery silently dropped a custom commit")
	}
}

func TestMidLogCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"))
	for i := 1; i <= 5; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("some payload"))))
	}
	e.Barrier()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logName(0))
	buf, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(logPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption: %v", err)
	}
}

func TestVersionsListing(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), SnapshotEvery(2))
	e.Submit(core.Insert("R", value.NewTuple(value.Int(1), value.Str("widget"))))
	e.Submit(core.Delete("R", value.Int(1)))
	e.Submit(core.Insert("R", value.NewTuple(value.Int(2))))
	e.Barrier()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	infos, err := Versions(dir)
	if err != nil {
		t.Fatal(err)
	}
	// snapshot 0, insert 1, delete 2 (snapshotted), insert 3.
	if len(infos) != 4 {
		t.Fatalf("got %d entries: %+v", len(infos), infos)
	}
	for i, info := range infos {
		if info.Seq != int64(i) {
			t.Fatalf("entry %d has seq %d", i, info.Seq)
		}
	}
	if infos[0].Kind != "snapshot" || infos[1].Kind != "insert" || infos[2].Kind != "delete" {
		t.Fatalf("kinds: %+v", infos)
	}
	if !infos[2].Snapshotted || infos[3].Snapshotted {
		t.Fatalf("snapshot markers wrong: %+v", infos)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), SnapshotEvery(3))
	for i := 1; i <= 10; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)))))
	}
	e.Barrier()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	removed, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) == 0 {
		t.Fatal("nothing compacted")
	}
	st, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.snaps) != 1 || len(st.logs) != 1 || st.snaps[0] != st.logs[0] {
		t.Fatalf("after compact: snaps %v logs %v", st.snaps, st.logs)
	}
	// The current version survives compaction...
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != 10 || got.TotalTuples() != 10 {
		t.Fatalf("post-compact version %d, %d tuples", got.Version(), got.TotalTuples())
	}
	// ...old versions are gone (the space/history trade).
	if _, err := VersionAt(dir, 2); err == nil {
		t.Error("compacted version still readable")
	}
	if _, err := VersionAt(dir, 10); err != nil {
		t.Errorf("newest version lost: %v", err)
	}
}

func TestAppendDirectCommits(t *testing.T) {
	// Feed an archive through NewCommit, without an engine: the bulk
	// import path.
	dir := t.TempDir()
	db := initialDB("R")
	a, err := Create(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	cur := db
	for i := 1; i <= 3; i++ {
		tx := core.Insert("R", value.NewTuple(value.Int(int64(i))))
		next, _, err := cur.Insert(nil, "R", tx.Tuple, trace.None)
		if err != nil {
			t.Fatal(err)
		}
		cur = next.AtVersion(int64(i))
		pinned := cur
		if err := a.Append(core.NewCommit(int64(i), tx, core.Response{}, func() *database.Database { return pinned })); err != nil {
			t.Fatal(err)
		}
	}
	if a.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d", a.LastSeq())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(cur) {
		t.Fatal("direct commits lost")
	}
}

func TestRecoverEmptyDirFails(t *testing.T) {
	if _, err := Recover(t.TempDir()); !errors.Is(err, ErrNoArchive) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := Open("/nonexistent/path/xyz"); err == nil {
		t.Fatal("opened nonexistent dir")
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"))
	for i := 1; i <= 4; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)))))
	}
	e.Barrier()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.LastSeq != 4 || sum.Torn {
		t.Fatalf("summary %+v", sum)
	}
	if len(sum.Files) != 2 {
		t.Fatalf("files: %+v", sum.Files)
	}
	for _, f := range sum.Files {
		if f.Err != "" {
			t.Errorf("%s: %s", f.Name, f.Err)
		}
	}
}

func TestSnapshotEncodingsAcrossReps(t *testing.T) {
	for _, rep := range []relation.Rep{relation.RepList, relation.RepAVL, relation.Rep23, relation.RepPaged} {
		t.Run(rep.String(), func(t *testing.T) {
			dir := t.TempDir()
			db := database.New(rep, "R")
			e, a := newEngineWithArchive(t, dir, db)
			for i := 0; i < 30; i++ {
				e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str(fmt.Sprintf("v%d", i)))))
			}
			e.Barrier()
			want := e.Current()
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatal("round trip lost data")
			}
			rel, _ := got.RelationFast("R")
			if rel.Rep() != rep {
				t.Fatalf("representation %v -> %v", rep, rel.Rep())
			}
		})
	}
}
