// Package archive makes the version stream durable: an append-only
// transaction log plus periodic full-version snapshots, in the binary wire
// format of internal/value. It is the on-disk form of the paper's
// Section 3.3 "complete archives" — the immutable version stream is the
// database's history, and retaining it durably buys restart recovery and
// on-disk time travel for free.
//
// An archive directory contains two kinds of files:
//
//	snap-<seq>.fdba   one full database version (the version numbered seq)
//	log-<seq>.fdba    committed transactions with sequence > seq, in order
//
// Every file is a stream of framed records; every snapshot starts a new log
// segment. Recovery loads the newest decodable snapshot and replays the
// log records behind it; a torn final record (a crash mid-append) is
// detected by the frame CRC and treated as the end of the durable stream.
package archive

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record framing:
//
//	record := type:uint8 length:uint32le payload crc:uint32le
//
// The CRC (IEEE 802.3) covers the type byte and the payload, so a frame
// whose length field is corrupted fails its checksum instead of being
// misparsed. maxRecordLen bounds allocation on corrupt length fields.

// Record types.
const (
	// recHeader opens every archive file: magic, format version, and the
	// base sequence number of the file.
	recHeader byte = 1
	// recSnapshot carries one full database version (snapshot files).
	recSnapshot byte = 2
	// recTxn carries one committed transaction (log files).
	recTxn byte = 3
)

const (
	// magic identifies archive files ("fDBa", format 1, in the header
	// payload).
	magic = "fDBa"
	// formatVersion is the on-disk format revision.
	formatVersion = 1
	// maxRecordLen caps a single record's payload (a full snapshot of a
	// very large database is the biggest record we write).
	maxRecordLen = 1 << 30
	// frameOverhead is the framing cost per record: type + length + CRC.
	frameOverhead = 1 + 4 + 4
)

// ErrCorrupt reports an undecodable archive (distinct from a clean
// truncation at the tail, which recovery tolerates).
var ErrCorrupt = errors.New("archive: corrupt record")

// errTruncated reports a frame cut short by a crash mid-append. Readers
// treat it as the end of the durable stream when it is the final frame.
var errTruncated = fmt.Errorf("%w: truncated frame", ErrCorrupt)

// checkRecordLen rejects payloads the frame format cannot carry (and the
// reader would refuse), before any bytes hit the disk.
func checkRecordLen(payload []byte) error {
	if len(payload) > maxRecordLen {
		return fmt.Errorf("archive: record of %d bytes exceeds the %d-byte frame limit", len(payload), maxRecordLen)
	}
	return nil
}

// appendRecord appends one framed record to dst. Callers must bound the
// payload with checkRecordLen first: the length field is 32-bit and the
// reader refuses frames over maxRecordLen, so an unchecked oversized write
// would succeed here and brick recovery later.
func appendRecord(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	return binary.LittleEndian.AppendUint32(dst, crc.Sum32())
}

// record is one decoded frame.
type record struct {
	typ     byte
	payload []byte
}

// reader decodes framed records from an io.Reader, tracking the byte
// offset of the last fully valid frame so a torn tail can be truncated
// before appending resumes.
type reader struct {
	r io.Reader
	// off is the offset just past the last successfully read record.
	off int64
}

// next reads one record. io.EOF means a clean end of stream; errTruncated
// means the stream ends inside a frame; other ErrCorrupt errors mean the
// frame is present but fails its checksum or length bounds.
func (rd *reader) next() (record, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(rd.r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return record{}, io.EOF
		}
		return record{}, fmt.Errorf("archive: read: %w", err)
	}
	if _, err := io.ReadFull(rd.r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return record{}, errTruncated
		}
		return record{}, fmt.Errorf("archive: read: %w", err)
	}
	typ := hdr[0]
	length := binary.LittleEndian.Uint32(hdr[1:])
	if length > maxRecordLen {
		return record{}, fmt.Errorf("%w: length %d exceeds limit", ErrCorrupt, length)
	}
	// Grow the body buffer only as bytes actually arrive: a corrupted
	// length field must cost a truncation error, not a giant allocation.
	var bodyBuf bytes.Buffer
	if _, err := io.CopyN(&bodyBuf, rd.r, int64(length)+4); err != nil {
		if errors.Is(err, io.EOF) {
			return record{}, errTruncated
		}
		return record{}, fmt.Errorf("archive: read: %w", err)
	}
	body := bodyBuf.Bytes()
	payload, sum := body[:length], binary.LittleEndian.Uint32(body[length:])
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	if crc.Sum32() != sum {
		return record{}, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	rd.off += int64(len(payload)) + frameOverhead
	return record{typ: typ, payload: payload}, nil
}

// headerPayload encodes a file header: magic, format version, file kind
// (the record type the file carries), and its base sequence number.
func headerPayload(kind byte, baseSeq int64) []byte {
	out := append([]byte(magic), formatVersion, kind)
	return binary.AppendVarint(out, baseSeq)
}

// decodeHeader validates a header payload and returns the file kind and
// base sequence.
func decodeHeader(payload []byte) (kind byte, baseSeq int64, err error) {
	if len(payload) < len(magic)+2 || string(payload[:len(magic)]) != magic {
		return 0, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	rest := payload[len(magic):]
	if rest[0] != formatVersion {
		return 0, 0, fmt.Errorf("archive: format version %d not supported", rest[0])
	}
	kind = rest[1]
	baseSeq, n := binary.Varint(rest[2:])
	if n <= 0 || n != len(rest[2:]) {
		return 0, 0, fmt.Errorf("%w: bad header sequence", ErrCorrupt)
	}
	return kind, baseSeq, nil
}
