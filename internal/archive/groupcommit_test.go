package archive

import (
	"testing"
	"time"

	"funcdb/internal/core"
	"funcdb/internal/value"
)

// TestGroupCommitRoundTrip: buffered appends survive Close and recover to
// the same database as unbatched appends.
func TestGroupCommitRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"),
		GroupCommit(time.Hour), Fsync(true)) // window never fires: Close must flush
	for i := 0; i < 50; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier()
	want := e.Current()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || got.Version() != want.Version() {
		t.Fatalf("group-commit recovery differs: version %d vs %d", got.Version(), want.Version())
	}
}

// TestGroupCommitFlushMakesDurable: before Flush the batch is only in
// memory; after Flush the records are recoverable without Close.
func TestGroupCommitFlushMakesDurable(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), GroupCommit(time.Hour))
	for i := 0; i < 10; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier() // all appends buffered, nothing guaranteed on disk yet

	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir) // reads the files as a crashed process would
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalTuples() != 10 {
		t.Fatalf("after Flush, recovery sees %d tuples, want 10", got.TotalTuples())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitWindowFlushes: with a short window, records land on disk
// without any explicit flush call.
func TestGroupCommitWindowFlushes(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), GroupCommit(2*time.Millisecond))
	defer a.Close()
	for i := 0; i < 20; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		got, err := Recover(dir)
		if err == nil && got.TotalTuples() == 20 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("window flusher never made the batch durable")
}

// TestGroupCommitSnapshotRotation: snapshots (forced by snapshotEvery)
// flush the pending batch into the old segment before rotating, so no
// record is lost across the boundary.
func TestGroupCommitSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"),
		GroupCommit(time.Hour), SnapshotEvery(7))
	for i := 0; i < 40; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier()
	want := e.Current()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || got.Version() != want.Version() {
		t.Fatalf("rotation under group commit lost records: version %d vs %d", got.Version(), want.Version())
	}
}

// TestGroupCommitVersionAtFlushes: on-disk time travel must observe
// buffered commits (VersionAt flushes first).
func TestGroupCommitVersionAtFlushes(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), GroupCommit(time.Hour))
	defer a.Close()
	for i := 0; i < 5; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier()
	db, err := a.VersionAt(5)
	if err != nil {
		t.Fatal(err)
	}
	if db.TotalTuples() != 5 {
		t.Fatalf("VersionAt(5) sees %d tuples, want 5", db.TotalTuples())
	}
}
