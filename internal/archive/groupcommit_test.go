package archive

import (
	"testing"
	"time"

	"funcdb/internal/core"
	"funcdb/internal/value"
)

// TestGroupCommitRoundTrip: buffered appends survive Close and recover to
// the same database as unbatched appends.
func TestGroupCommitRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"),
		GroupCommit(time.Hour), Fsync(true)) // window never fires: Close must flush
	for i := 0; i < 50; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier()
	want := e.Current()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || got.Version() != want.Version() {
		t.Fatalf("group-commit recovery differs: version %d vs %d", got.Version(), want.Version())
	}
}

// TestGroupCommitFlushMakesDurable: before Flush the batch is only in
// memory; after Flush the records are recoverable without Close.
func TestGroupCommitFlushMakesDurable(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), GroupCommit(time.Hour))
	for i := 0; i < 10; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier() // all appends buffered, nothing guaranteed on disk yet

	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir) // reads the files as a crashed process would
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalTuples() != 10 {
		t.Fatalf("after Flush, recovery sees %d tuples, want 10", got.TotalTuples())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitWindowFlushes: with a short window, records land on disk
// without any explicit flush call.
func TestGroupCommitWindowFlushes(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), GroupCommit(2*time.Millisecond))
	defer a.Close()
	for i := 0; i < 20; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		got, err := Recover(dir)
		if err == nil && got.TotalTuples() == 20 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("window flusher never made the batch durable")
}

// TestGroupCommitSnapshotRotation: snapshots (forced by snapshotEvery)
// flush the pending batch into the old segment before rotating, so no
// record is lost across the boundary.
func TestGroupCommitSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"),
		GroupCommit(time.Hour), SnapshotEvery(7))
	for i := 0; i < 40; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier()
	want := e.Current()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || got.Version() != want.Version() {
		t.Fatalf("rotation under group commit lost records: version %d vs %d", got.Version(), want.Version())
	}
}

// TestGroupCommitAdaptiveBatchFlush: with ExpectBatch hinted, the batch
// is durable as soon as its last append lands — the window timer (an hour
// here) never fires, so only the adaptive flush can have written it.
func TestGroupCommitAdaptiveBatchFlush(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), GroupCommit(time.Hour))
	defer a.Close()

	const n = 20
	a.ExpectBatch(n)
	txs := make([]core.Transaction, n)
	for i := range txs {
		txs[i] = core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v")))
	}
	e.SubmitBatch(txs)
	e.Barrier() // every observer append has run; the nth flushed the buffer

	got, err := Recover(dir) // reads the files as a crashed process would
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalTuples() != n {
		t.Fatalf("after a full hinted batch, recovery sees %d tuples, want %d", got.TotalTuples(), n)
	}
}

// TestGroupCommitAdaptivePartialBatchStaysBuffered: a hint larger than
// what actually lands must not flush — the adaptive window only fires on
// a complete batch (the remainder drains against later appends).
func TestGroupCommitAdaptivePartialBatchStaysBuffered(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), GroupCommit(time.Hour))
	defer a.Close()

	a.ExpectBatch(10)
	for i := 0; i < 9; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier()
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalTuples() != 0 {
		t.Fatalf("partial batch flushed early: %d tuples on disk", got.TotalTuples())
	}
	// The 10th append completes the hinted batch and flushes.
	e.Submit(core.Insert("R", value.NewTuple(value.Int(9), value.Str("v"))))
	e.Barrier()
	if got, err = Recover(dir); err != nil || got.TotalTuples() != 10 {
		t.Fatalf("completed batch not durable: %d tuples, %v", got.TotalTuples(), err)
	}
}

// TestGroupCommitAdaptiveRecoversFromFailedHintedWrite: a hinted write
// that errors before committing (plan failure: unknown relation) never
// reaches Append — the hint must not wedge the adaptive flush for later
// batches. Regression test for the countdown formulation of the hint.
func TestGroupCommitAdaptiveRecoversFromFailedHintedWrite(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), GroupCommit(time.Hour))
	defer a.Close()

	// Batch 1: hinted 5, but one write fails at planning and never
	// commits — only 4 records ever reach the buffer.
	a.ExpectBatch(5)
	batch1 := []core.Transaction{
		core.Insert("R", value.NewTuple(value.Int(0), value.Str("v"))),
		core.Insert("R", value.NewTuple(value.Int(1), value.Str("v"))),
		core.Insert("NOPE", value.NewTuple(value.Int(2), value.Str("v"))), // error response, no commit
		core.Insert("R", value.NewTuple(value.Int(3), value.Str("v"))),
		core.Insert("R", value.NewTuple(value.Int(4), value.Str("v"))),
	}
	e.SubmitBatch(batch1)
	e.Barrier()

	// Batch 2: fully successful and hinted — it must flush adaptively
	// even though batch 1's hint was never fully served.
	a.ExpectBatch(5)
	batch2 := make([]core.Transaction, 5)
	for i := range batch2 {
		batch2[i] = core.Insert("R", value.NewTuple(value.Int(int64(10+i)), value.Str("v")))
	}
	e.SubmitBatch(batch2)
	e.Barrier()

	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalTuples() != 9 { // 4 from batch 1 + 5 from batch 2
		t.Fatalf("adaptive flush wedged by failed hinted write: %d tuples durable, want 9", got.TotalTuples())
	}
}

// TestGroupCommitExpectBatchWithoutGroupCommit: the hint is a no-op when
// group commit is off (every append is already written immediately).
func TestGroupCommitExpectBatchWithoutGroupCommit(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"))
	defer a.Close()
	a.ExpectBatch(5)
	e.Submit(core.Insert("R", value.NewTuple(value.Int(1), value.Str("v"))))
	e.Barrier()
	got, err := Recover(dir)
	if err != nil || got.TotalTuples() != 1 {
		t.Fatalf("unbatched append: %v, %d tuples", err, got.TotalTuples())
	}
}

// TestGroupCommitVersionAtFlushes: on-disk time travel must observe
// buffered commits (VersionAt flushes first).
func TestGroupCommitVersionAtFlushes(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), GroupCommit(time.Hour))
	defer a.Close()
	for i := 0; i < 5; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier()
	db, err := a.VersionAt(5)
	if err != nil {
		t.Fatal(err)
	}
	if db.TotalTuples() != 5 {
		t.Fatalf("VersionAt(5) sees %d tuples, want 5", db.TotalTuples())
	}
}
