package archive

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"funcdb/internal/database"
	"funcdb/internal/trace"
)

// dirState is the parsed contents of an archive directory.
type dirState struct {
	snaps []int64 // base sequences of snapshot files, ascending
	logs  []int64 // base sequences of log segments, ascending
}

// scanDir parses the archive file names in dir. A missing directory is an
// empty archive, not an error.
func scanDir(dir string) (dirState, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return dirState{}, nil
		}
		return dirState{}, fmt.Errorf("archive: %w", err)
	}
	var st dirState
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".fdba") {
			continue
		}
		base := strings.TrimSuffix(name, ".fdba")
		switch {
		case strings.HasPrefix(base, "snap-"):
			if seq, err := strconv.ParseInt(strings.TrimPrefix(base, "snap-"), 10, 64); err == nil {
				st.snaps = append(st.snaps, seq)
			}
		case strings.HasPrefix(base, "log-"):
			if seq, err := strconv.ParseInt(strings.TrimPrefix(base, "log-"), 10, 64); err == nil {
				st.logs = append(st.logs, seq)
			}
		}
	}
	sort.Slice(st.snaps, func(i, j int) bool { return st.snaps[i] < st.snaps[j] })
	sort.Slice(st.logs, func(i, j int) bool { return st.logs[i] < st.logs[j] })
	return st, nil
}

// readSnapshot loads and decodes the snapshot file based at seq.
func readSnapshot(dir string, seq int64) (*database.Database, error) {
	f, err := os.Open(filepath.Join(dir, snapName(seq)))
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	defer f.Close()
	rd := &reader{r: f}
	hdr, err := rd.next()
	if err != nil {
		return nil, fmt.Errorf("snapshot %d: %w", seq, err)
	}
	if hdr.typ != recHeader {
		return nil, fmt.Errorf("%w: snapshot %d: missing header", ErrCorrupt, seq)
	}
	kind, base, err := decodeHeader(hdr.payload)
	if err != nil {
		return nil, fmt.Errorf("snapshot %d: %w", seq, err)
	}
	if kind != recSnapshot || base != seq {
		return nil, fmt.Errorf("%w: snapshot %d: header names %d/%d", ErrCorrupt, seq, kind, base)
	}
	rec, err := rd.next()
	if err != nil {
		return nil, fmt.Errorf("snapshot %d: %w", seq, err)
	}
	if rec.typ != recSnapshot {
		return nil, fmt.Errorf("%w: snapshot %d: unexpected record type %d", ErrCorrupt, seq, rec.typ)
	}
	db, err := database.DecodeSnapshot(rec.payload)
	if err != nil {
		return nil, fmt.Errorf("snapshot %d: %w", seq, err)
	}
	if db.Version() != seq {
		return nil, fmt.Errorf("%w: snapshot %d claims version %d", ErrCorrupt, seq, db.Version())
	}
	return db, nil
}

// logContents is the decoded state of one log segment.
type logContents struct {
	entries  []loggedTxn
	validLen int64 // byte length of the valid record prefix
	torn     bool  // a truncated final frame was dropped
}

// readLog decodes the log segment based at seq. A missing file reads as an
// empty segment (a crash can separate snapshot and log creation); a torn
// final frame ends the segment cleanly; mid-stream checksum failures are
// fatal corruption.
func readLog(dir string, seq int64) (logContents, error) {
	f, err := os.Open(filepath.Join(dir, logName(seq)))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return logContents{}, nil
		}
		return logContents{}, fmt.Errorf("archive: %w", err)
	}
	defer f.Close()
	rd := &reader{r: f}
	hdr, err := rd.next()
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, errTruncated) {
			// Header never fully landed: an empty segment with a torn tail.
			return logContents{torn: !errors.Is(err, io.EOF)}, nil
		}
		return logContents{}, fmt.Errorf("log %d: %w", seq, err)
	}
	if hdr.typ != recHeader {
		return logContents{}, fmt.Errorf("%w: log %d: missing header", ErrCorrupt, seq)
	}
	kind, base, err := decodeHeader(hdr.payload)
	if err != nil {
		return logContents{}, fmt.Errorf("log %d: %w", seq, err)
	}
	if kind != recTxn || base != seq {
		return logContents{}, fmt.Errorf("%w: log %d: header names %d/%d", ErrCorrupt, seq, kind, base)
	}
	out := logContents{validLen: rd.off}
	next := seq + 1
	for {
		rec, err := rd.next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if errors.Is(err, errTruncated) {
			out.torn = true
			return out, nil
		}
		if err != nil {
			return logContents{}, fmt.Errorf("log %d: %w", seq, err)
		}
		if rec.typ != recTxn {
			return logContents{}, fmt.Errorf("%w: log %d: unexpected record type %d", ErrCorrupt, seq, rec.typ)
		}
		entry, err := decodeTxn(rec.payload)
		if err != nil {
			return logContents{}, fmt.Errorf("log %d: %w", seq, err)
		}
		if entry.Seq != next {
			return logContents{}, fmt.Errorf("%w: log %d: sequence %d where %d expected", ErrCorrupt, seq, entry.Seq, next)
		}
		next++
		out.entries = append(out.entries, entry)
		out.validLen = rd.off
	}
}

// replay applies logged transactions to db in order, pinning each result
// to the engine's sequence numbering.
func replay(db *database.Database, entries []loggedTxn) (*database.Database, error) {
	for _, e := range entries {
		resp, next, _ := e.Tx.Apply(nil, db, trace.None)
		if resp.Err != nil {
			return nil, fmt.Errorf("archive: replay diverged at seq %d (%s): %w", e.Seq, e.Tx.Kind, resp.Err)
		}
		db = next.AtVersion(e.Seq)
	}
	return db, nil
}

// recovered is the full result of reading an archive directory.
type recovered struct {
	db         *database.Database
	lastSeq    int64
	logBase    int64 // base of the newest log segment
	logLen     int64 // valid byte length of that segment
	logRecords int   // records in that segment
	logTorn    bool
}

// recoverState loads the newest decodable snapshot and replays the log
// segments behind it. Normally that is the newest snapshot and its single
// log suffix; if the newest snapshot is undecodable (bit rot, partial
// write), recovery falls back to an older one and chains forward through
// the intervening segments — every encodable transaction is logged even
// across rotations, so older snapshot + logs reproduce the same stream.
// The one unbridgeable gap is a rotation forced by a custom transaction
// (its body has no wire form; the lost snapshot was its only record),
// which fails with a clear error rather than a silently shortened history.
func recoverState(dir string) (recovered, error) {
	st, err := scanDir(dir)
	if err != nil {
		return recovered{}, err
	}
	if len(st.snaps) == 0 {
		return recovered{}, fmt.Errorf("%w: %s", ErrNoArchive, dir)
	}
	base := int64(-1)
	var db *database.Database
	var snapErr error
	for i := len(st.snaps) - 1; i >= 0; i-- {
		d, err := readSnapshot(dir, st.snaps[i])
		if err == nil {
			base, db = st.snaps[i], d
			break
		}
		if snapErr == nil {
			snapErr = err // report the newest failure
		}
	}
	if base < 0 {
		return recovered{}, fmt.Errorf("archive: no decodable snapshot: %w", snapErr)
	}

	// Chain forward: the segment based at the snapshot, then any later
	// segments, each picking up exactly where the previous left off.
	rec := recovered{db: db, logBase: base}
	first := true
	for _, seg := range st.logs {
		if seg < base {
			continue // pre-snapshot history: time travel only
		}
		if seg != db.Version() {
			if snapErr == nil {
				snapErr = fmt.Errorf("%w: segment log-%d has no preceding snapshot", ErrCorrupt, seg)
			}
			return recovered{}, fmt.Errorf(
				"archive: cannot bridge to segment log-%d from version %d (snapshot %d lost with its custom commit): %w",
				seg, db.Version(), seg, snapErr)
		}
		lc, err := readLog(dir, seg)
		if err != nil {
			return recovered{}, err
		}
		db, err = replay(db, lc.entries)
		if err != nil {
			return recovered{}, err
		}
		rec.logBase, rec.logLen, rec.logRecords, rec.logTorn = seg, lc.validLen, len(lc.entries), lc.torn
		first = false
	}
	if first {
		// No segment at or after the snapshot (crash between snapshot and
		// log creation): the snapshot alone is the durable state.
		rec.logBase = base
	}
	rec.db = db
	rec.lastSeq = db.Version()
	return rec, nil
}

// Recover rebuilds the last durable version from dir without opening the
// archive for appending: newest snapshot + log suffix, replayed through
// the translated transactions.
func Recover(dir string) (*database.Database, error) {
	rec, err := recoverState(dir)
	if err != nil {
		return nil, err
	}
	return rec.db, nil
}

// VersionAt materializes the on-disk version numbered seq: the newest
// snapshot at or below seq, plus the log records up to seq. Versions below
// the oldest retained snapshot have been compacted away; versions above
// the last durable sequence were never archived.
func VersionAt(dir string, seq int64) (*database.Database, error) {
	st, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(st.snaps) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoArchive, dir)
	}
	base := int64(-1)
	for _, s := range st.snaps {
		if s <= seq {
			base = s
		}
	}
	if base < 0 {
		return nil, fmt.Errorf("archive: version %d predates the oldest snapshot (%d); compacted away", seq, st.snaps[0])
	}
	db, err := readSnapshot(dir, base)
	if err != nil {
		return nil, err
	}
	if base == seq {
		return db, nil
	}
	lc, err := readLog(dir, base)
	if err != nil {
		return nil, err
	}
	upTo := seq - base
	if int64(len(lc.entries)) < upTo {
		return nil, fmt.Errorf("archive: version %d not archived (last durable is %d)", seq, base+int64(len(lc.entries)))
	}
	return replay(db, lc.entries[:upTo])
}

// VersionInfo describes one element of the on-disk version stream.
type VersionInfo struct {
	// Seq is the version's sequence number.
	Seq int64
	// Kind is what produced it: "snapshot" or a transaction verb.
	Kind string
	// Detail is a human-readable description (query text, tuple counts).
	Detail string
	// Snapshotted reports whether a full snapshot exists at this version.
	Snapshotted bool
}

// Versions lists the durable version stream oldest-first: every snapshot
// and every logged transaction, in sequence order.
func Versions(dir string) ([]VersionInfo, error) {
	st, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(st.snaps) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoArchive, dir)
	}
	snapSet := make(map[int64]bool, len(st.snaps))
	for _, s := range st.snaps {
		snapSet[s] = true
	}
	var out []VersionInfo
	seen := make(map[int64]bool)
	for _, base := range st.snaps {
		if !seen[base] {
			seen[base] = true
			db, err := readSnapshot(dir, base)
			detail := ""
			if err != nil {
				detail = "undecodable: " + err.Error()
			} else {
				detail = fmt.Sprintf("%d relations, %d tuples", len(db.RelationNames()), db.TotalTuples())
			}
			out = append(out, VersionInfo{Seq: base, Kind: "snapshot", Detail: detail, Snapshotted: true})
		}
		lc, err := readLog(dir, base)
		if err != nil {
			return out, err
		}
		for _, e := range lc.entries {
			if seen[e.Seq] {
				continue
			}
			seen[e.Seq] = true
			detail := e.Tx.Query
			if detail == "" {
				detail = describeTxn(e)
			}
			out = append(out, VersionInfo{Seq: e.Seq, Kind: e.Tx.Kind.String(), Detail: detail, Snapshotted: snapSet[e.Seq]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		// A snapshot entry for the same seq sorts after the transaction
		// that produced it.
		return out[i].Kind != "snapshot"
	})
	return out, nil
}

// describeTxn renders a logged transaction without source text in query
// syntax.
func describeTxn(e loggedTxn) string {
	switch e.Tx.Kind.String() {
	case "insert":
		return fmt.Sprintf("insert %s into %s", e.Tx.Tuple, e.Tx.Rel)
	case "delete":
		return fmt.Sprintf("delete %s from %s", e.Tx.Key, e.Tx.Rel)
	case "create":
		return fmt.Sprintf("create %s using %s", e.Tx.Rel, e.Tx.Rep)
	default:
		return e.Tx.Kind.String() + " " + e.Tx.Rel
	}
}

// Compact removes snapshots and log segments older than the newest
// snapshot, returning the removed file names. The newest snapshot plus its
// log suffix fully determine the current version; older pairs only serve
// time travel, which compaction trades for space (the paper's Section 3.3
// garbage collection, applied to the durable stream). The archive must not
// be open for appending.
func Compact(dir string) ([]string, error) {
	st, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(st.snaps) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoArchive, dir)
	}
	newest := st.snaps[len(st.snaps)-1]
	// Refuse to drop history the newest snapshot cannot stand in for.
	if _, err := readSnapshot(dir, newest); err != nil {
		return nil, fmt.Errorf("archive: compact: newest snapshot unreadable, refusing: %w", err)
	}
	var removed []string
	for _, s := range st.snaps[:len(st.snaps)-1] {
		name := snapName(s)
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return removed, fmt.Errorf("archive: compact: %w", err)
		}
		removed = append(removed, name)
	}
	for _, s := range st.logs {
		if s >= newest {
			continue
		}
		name := logName(s)
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return removed, fmt.Errorf("archive: compact: %w", err)
		}
		removed = append(removed, name)
	}
	return removed, nil
}
