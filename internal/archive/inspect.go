package archive

import (
	"fmt"
	"os"
	"path/filepath"
)

// FileInfo summarizes one archive file for inspection.
type FileInfo struct {
	Name    string
	Bytes   int64
	Records int
	// Err is empty for a cleanly decodable file, otherwise the problem.
	Err string
}

// Summary is the result of Inspect.
type Summary struct {
	Files []FileInfo
	// LastSeq is the last durable sequence (the recoverable version).
	LastSeq int64
	// Torn reports a truncated final record in the newest log segment.
	Torn bool
}

// Inspect walks an archive's files, validating every frame, and reports
// layout, record counts and the recoverable version.
func Inspect(dir string) (Summary, error) {
	st, err := scanDir(dir)
	if err != nil {
		return Summary{}, err
	}
	if len(st.snaps) == 0 {
		return Summary{}, fmt.Errorf("%w: %s", ErrNoArchive, dir)
	}
	var sum Summary
	stat := func(name string) int64 {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return 0
		}
		return fi.Size()
	}
	for _, s := range st.snaps {
		info := FileInfo{Name: snapName(s), Bytes: stat(snapName(s))}
		if _, err := readSnapshot(dir, s); err != nil {
			info.Err = err.Error()
		} else {
			info.Records = 2 // header + snapshot
		}
		sum.Files = append(sum.Files, info)
	}
	for _, s := range st.logs {
		info := FileInfo{Name: logName(s), Bytes: stat(logName(s))}
		lc, err := readLog(dir, s)
		if err != nil {
			info.Err = err.Error()
		} else {
			info.Records = 1 + len(lc.entries) // header + transactions
			if lc.torn {
				info.Err = "torn final record"
			}
		}
		sum.Files = append(sum.Files, info)
	}
	rec, err := recoverState(dir)
	if err != nil {
		return sum, err
	}
	sum.LastSeq = rec.lastSeq
	sum.Torn = rec.logTorn
	return sum, nil
}
