package archive

import (
	"sync"
	"testing"
	"time"

	"funcdb/internal/core"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// tailCollector accumulates subscription records under a lock (TailFunc
// runs on the commit path; tests read from the test goroutine).
type tailCollector struct {
	mu   sync.Mutex
	seqs []int64
	txs  []core.Transaction
}

func (c *tailCollector) fn(seq int64, payload []byte) {
	dseq, tx, err := DecodeTxnRecord(payload)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil || dseq != seq {
		// Record the corruption as an impossible seq; the test fails on it.
		c.seqs = append(c.seqs, -1)
		return
	}
	c.seqs = append(c.seqs, seq)
	c.txs = append(c.txs, tx)
}

func (c *tailCollector) snapshot() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int64(nil), c.seqs...)
}

// TestSubscribeTxnsCatchUpAndLive: a subscription opened mid-stream
// replays the durable history behind it and then receives live appends,
// with contiguous sequences and no duplicate or missing record across
// the replay/live boundary.
func TestSubscribeTxnsCatchUpAndLive(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), GroupCommit(time.Hour))
	for i := 0; i < 20; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier() // 20 commits, all still in the group-commit buffer

	var col tailCollector
	cancel, err := a.SubscribeTxns(0, col.fn)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Replay must have flushed the pending batch and delivered 1..20.
	got := col.snapshot()
	if len(got) != 20 {
		t.Fatalf("catch-up delivered %d records, want 20", len(got))
	}
	for i, seq := range got {
		if seq != int64(i+1) {
			t.Fatalf("catch-up record %d has seq %d", i, seq)
		}
	}

	// Live appends continue the sequence with no gap.
	for i := 20; i < 35; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Submit(core.Delete("R", value.Int(0)))
	e.Barrier()
	got = col.snapshot()
	if len(got) != 36 {
		t.Fatalf("after live appends: %d records, want 36", len(got))
	}
	for i, seq := range got {
		if seq != int64(i+1) {
			t.Fatalf("record %d has seq %d (gap or duplicate at the replay/live boundary)", i, seq)
		}
	}
	col.mu.Lock()
	last := col.txs[len(col.txs)-1]
	col.mu.Unlock()
	if last.Kind != core.KindDelete || last.Rel != "R" {
		t.Fatalf("last record decoded as %v %s", last.Kind, last.Rel)
	}

	// Cancel stops delivery.
	cancel()
	e.Submit(core.Insert("R", value.NewTuple(value.Int(99), value.Str("v"))))
	e.Barrier()
	if n := len(col.snapshot()); n != 36 {
		t.Fatalf("after cancel: %d records, want 36", n)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeTxnsSpansRotation: catch-up must chain across snapshot
// rotations — every encodable transaction is logged in exactly one
// segment, so a subscription from 0 sees them all once each.
func TestSubscribeTxnsSpansRotation(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), SnapshotEvery(7))
	for i := 0; i < 30; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier()

	var col tailCollector
	cancel, err := a.SubscribeTxns(10, col.fn)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	got := col.snapshot()
	if len(got) != 20 {
		t.Fatalf("subscription from 10 delivered %d records, want 20", len(got))
	}
	for i, seq := range got {
		if seq != int64(11+i) {
			t.Fatalf("record %d has seq %d", i, seq)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeTxnsReplayRebuildsState: applying the subscribed records
// to the initial version reproduces the primary's database — the
// subscription really is a complete replication stream.
func TestSubscribeTxnsReplayRebuildsState(t *testing.T) {
	dir := t.TempDir()
	initial := initialDB("R", "S")
	e, a := newEngineWithArchive(t, dir, initial, SnapshotEvery(5))

	var col tailCollector
	cancel, err := a.SubscribeTxns(0, col.fn)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	for i := 0; i < 25; i++ {
		rel := "R"
		if i%3 == 0 {
			rel = "S"
		}
		e.Submit(core.Insert(rel, value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Submit(core.Delete("R", value.Int(4)))
	e.Barrier()
	want := e.Current()

	col.mu.Lock()
	txs := append([]core.Transaction(nil), col.txs...)
	col.mu.Unlock()
	db := initial
	for _, tx := range txs {
		_, next, _ := tx.Apply(nil, db, trace.None)
		db = next
	}
	if !db.Equal(want) {
		t.Fatal("replaying the subscription stream diverged from the primary")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeTxnsRefusesCompactedHistory: a subscription starting
// before the oldest retained segment must fail loudly, not stream a
// silently incomplete history.
func TestSubscribeTxnsRefusesCompactedHistory(t *testing.T) {
	dir := t.TempDir()
	e, a := newEngineWithArchive(t, dir, initialDB("R"), SnapshotEvery(5))
	for i := 0; i < 20; i++ {
		e.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
	}
	e.Barrier()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(dir); err != nil {
		t.Fatal(err)
	}
	a2, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	var col tailCollector
	if cancel, err := a2.SubscribeTxns(0, col.fn); err == nil {
		cancel()
		t.Fatal("subscription from 0 succeeded over compacted history")
	}
}
