package archive

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/metrics"
	"funcdb/internal/reqtrace"
)

// ErrNoArchive reports a directory with no archive in it.
var ErrNoArchive = errors.New("archive: no archive in directory")

// ErrExists reports creating an archive where one is already present.
var ErrExists = errors.New("archive: archive already present")

// ErrLogTrimmed reports a subscription starting below the retained log:
// the records the subscriber needs no longer exist in record form, so
// retrying cannot help — the subscriber must bootstrap from a snapshot
// (the ROADMAP's elastic-membership item) or rewind to a retained
// position. The sentinel crosses the wire by message text, which is why
// the text is stable.
var ErrLogTrimmed = errors.New("archive: subscribe predates the retained log")

// config collects archive options.
type config struct {
	snapshotEvery int
	fsync         bool
	group         time.Duration
	metrics       *metrics.Archive
}

// Option configures an archive.
type Option func(*config)

// SnapshotEvery takes a full snapshot (and starts a fresh log segment)
// after every n logged transactions. Snapshots bound recovery replay time
// and are the granularity of Compact; n <= 0 (the default) snapshots only
// when forced (custom transactions, whose bodies have no wire form).
func SnapshotEvery(n int) Option {
	return func(c *config) { c.snapshotEvery = n }
}

// Fsync controls whether every appended record is fsynced before the
// commit is reported durable. Off (the default) survives process crashes —
// the records are in the OS page cache — but not power loss; on survives
// both at a per-write fsync cost.
func Fsync(on bool) Option {
	return func(c *config) { c.fsync = on }
}

// GroupCommit batches log appends: records accumulate in memory and are
// flushed — one write, and one fsync when Fsync is on — at least every
// window. The commit path pays an in-memory copy instead of a syscall (and
// instead of a per-commit fsync), multiplying durable-write throughput; the
// cost is that a crash may lose the commits of the current window. Flush,
// Sync, Snapshot, VersionAt and Close all flush the pending batch first,
// so anything observed through the archive API is on disk. window <= 0
// disables batching (the default: every append is written immediately).
func GroupCommit(window time.Duration) Option {
	return func(c *config) { c.group = window }
}

// WithMetrics records durability metrics into m: appends, bytes, flush
// occupancy, fsync latency, snapshots and recovery duration. Nil (the
// default) records nothing and costs nothing.
func WithMetrics(m *metrics.Archive) Option {
	return func(c *config) { c.metrics = m }
}

// Archive is an open, appendable archive directory. One writer at a time;
// methods are safe for concurrent use within a process.
type Archive struct {
	mu        sync.Mutex
	dir       string
	cfg       config
	log       *os.File
	logBase   int64  // sequence of the snapshot the open log segment follows
	lastSeq   int64  // newest accepted sequence number (buffered or durable)
	sinceSnap int    // transactions logged since the last snapshot
	failed    error  // sticky first failure; appends refuse after it
	buf       []byte // group commit: framed records awaiting one write+fsync
	bufRecs   int    // records in buf
	expect    int    // adaptive window: flush once bufRecs reaches this (0 = no hint)

	// Log-tail subscriptions (SubscribeTxns): each registered function
	// receives every appended transaction record, in commit order, under
	// a.mu. nextSubID keys cancellation.
	tails     map[uint64]TailFunc
	nextSubID uint64

	// Traced commits awaiting the group flush: each entry turns into a
	// group-commit-fsync span when flushLocked lands the batch. Empty
	// whenever tracing is off — appending costs nothing untraced.
	pendingTr []pendingTrace

	// Bounded seq → trace-context map for log-stream propagation: the
	// server's tail handler runs off the commit path (outside a.mu), so it
	// looks the context up by sequence here. Guarded by its own mutex —
	// TailFuncs must never reacquire a.mu. Allocated on first traced
	// commit; a slot holds the newest commit hashing to it.
	trMu   sync.Mutex
	trCtxs []traceCtxSlot

	// Group-commit flusher goroutine lifecycle.
	flushStop chan struct{}
	flushDone chan struct{}
	stopOnce  sync.Once
}

// pendingTrace is one traced commit buffered for group commit: the trace
// handle and the buffering instant the fsync span starts at.
type pendingTrace struct {
	t  *reqtrace.T
	at int64 // unix nanoseconds
}

// traceCtxSlot is one entry of the seq → trace-context ring.
type traceCtxSlot struct {
	seq int64
	ctx reqtrace.Ctx
}

// traceCtxSlots sizes the seq → trace-context ring: enough to outlive the
// window between a commit and the tail handler's writer goroutine picking
// the record up, tiny enough to never matter.
const traceCtxSlots = 1024

// putTraceCtx remembers the trace context of a sampled traced commit so
// the log-shipping path can stamp it onto the stream record for
// version-5 subscribers.
func (a *Archive) putTraceCtx(seq int64, ctx reqtrace.Ctx) {
	a.trMu.Lock()
	if a.trCtxs == nil {
		a.trCtxs = make([]traceCtxSlot, traceCtxSlots)
	}
	a.trCtxs[seq%traceCtxSlots] = traceCtxSlot{seq: seq, ctx: ctx}
	a.trMu.Unlock()
}

// TraceCtxOf returns the trace context recorded for a committed sequence,
// or the zero (untraced) context. Safe to call from a TailFunc: it takes
// only the context ring's own mutex, never a.mu.
func (a *Archive) TraceCtxOf(seq int64) reqtrace.Ctx {
	a.trMu.Lock()
	defer a.trMu.Unlock()
	if a.trCtxs == nil {
		return reqtrace.Ctx{}
	}
	if s := a.trCtxs[seq%traceCtxSlots]; s.seq == seq {
		return s.ctx
	}
	return reqtrace.Ctx{}
}

// startFlusher launches the group-commit window timer. Called once at
// Create/Open when GroupCommit is configured.
func (a *Archive) startFlusher() {
	if a.cfg.group <= 0 {
		return
	}
	a.flushStop = make(chan struct{})
	a.flushDone = make(chan struct{})
	go func() {
		defer close(a.flushDone)
		t := time.NewTicker(a.cfg.group)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = a.Flush() // failures are sticky; Close reports them
			case <-a.flushStop:
				return
			}
		}
	}()
}

// stopFlusher terminates the window timer and waits for it to exit. Safe
// to call more than once, and a no-op without group commit.
func (a *Archive) stopFlusher() {
	if a.flushStop == nil {
		return
	}
	a.stopOnce.Do(func() {
		close(a.flushStop)
		<-a.flushDone
	})
}

func snapName(seq int64) string { return fmt.Sprintf("snap-%016d.fdba", seq) }
func logName(seq int64) string  { return fmt.Sprintf("log-%016d.fdba", seq) }

// Exists reports whether dir holds an archive.
func Exists(dir string) bool {
	st, err := scanDir(dir)
	return err == nil && len(st.snaps) > 0
}

// Create initializes a new archive in dir (created if absent) whose first
// snapshot is the given initial version. It fails with ErrExists if dir
// already holds an archive.
func Create(dir string, initial *database.Database, opts ...Option) (*Archive, error) {
	a := &Archive{dir: dir}
	for _, opt := range opts {
		opt(&a.cfg)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	st, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(st.snaps) > 0 || len(st.logs) > 0 {
		return nil, fmt.Errorf("%w: %s", ErrExists, dir)
	}
	if err := a.writeSnapshot(initial); err != nil {
		return nil, err
	}
	a.startFlusher()
	return a, nil
}

// Open opens an existing archive for appending and returns it together
// with the recovered current version (newest snapshot + log suffix). A
// torn final record — a crash mid-append — is truncated away so the log is
// clean before new commits land behind it.
func Open(dir string, opts ...Option) (*Archive, *database.Database, error) {
	a := &Archive{dir: dir}
	for _, opt := range opts {
		opt(&a.cfg)
	}
	var recoverStart time.Time
	if a.cfg.metrics != nil {
		recoverStart = time.Now()
	}
	rec, err := recoverState(dir)
	if err != nil {
		return nil, nil, err
	}
	logPath := filepath.Join(dir, logName(rec.logBase))
	if rec.logTorn {
		if err := os.Truncate(logPath, rec.logLen); err != nil {
			return nil, nil, fmt.Errorf("archive: truncating torn log tail: %w", err)
		}
	}
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("archive: %w", err)
	}
	if rec.logLen == 0 {
		// The log segment never made it to disk (crash between snapshot
		// and log creation): start it now.
		hdr := appendRecord(nil, recHeader, headerPayload(recTxn, rec.logBase))
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("archive: %w", err)
		}
	} else if _, err := f.Seek(rec.logLen, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("archive: %w", err)
	}
	a.log = f
	a.logBase = rec.logBase
	a.lastSeq = rec.lastSeq
	a.sinceSnap = rec.logRecords
	if a.cfg.metrics != nil {
		a.cfg.metrics.Recovered(time.Since(recoverStart))
	}
	a.startFlusher()
	return a, rec.db, nil
}

// maxGroupRecords caps the group-commit buffer: a window long enough to
// hold more than this many records flushes early, bounding both the
// buffer's memory and the number of commits a crash can lose.
const maxGroupRecords = 4096

// ExpectBatch hints that a batch of n committed writes is about to reach
// Append: the adaptive group-commit window. Once the buffer has grown by
// that many records, the pending batch is flushed immediately instead of
// waiting out the window timer — a full admission batch is exactly the
// write the group-commit machinery exists to coalesce, so there is
// nothing to gain by sleeping on it.
//
// The hint is a high-water mark rebased on the current buffer (flush
// when bufRecs reaches bufRecs-now + n), not a countdown: a hinted write
// that errors before committing never reaches Append, and a countdown it
// failed to decrement would wedge the adaptive flush forever. With the
// high-water form a shortfall only delays the current batch's flush (the
// timer still covers it); the next hint rebases and the machinery
// recovers. Unhinted appends landing in between only make the flush
// earlier. A no-op without group commit.
func (a *Archive) ExpectBatch(n int) {
	if n <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.group <= 0 {
		return
	}
	a.expect = a.bufRecs + n
}

// Append records one committed write. Encodable transactions become log
// records; custom transactions (no wire form) force a full snapshot of the
// version they produced. It is the body of the core.CommitObserver hook.
func (a *Archive) Append(c core.Commit) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failed != nil {
		return a.failed
	}
	if err := a.append(c); err != nil {
		a.failed = err
		return err
	}
	a.lastSeq = c.Seq
	// Adaptive window: once the buffer reaches the hinted high-water mark
	// — the last append of a full admitted batch — flush without waiting
	// for the timer. maxGroupRecords caps the buffer regardless of hints.
	if (a.expect > 0 && a.bufRecs >= a.expect) || a.bufRecs >= maxGroupRecords {
		return a.flushLocked()
	}
	return nil
}

func (a *Archive) append(c core.Commit) error {
	if a.log == nil {
		// Closed: refuse rather than buffer into a dead batch (the
		// non-group path would surface this as a nil-file write error).
		return fmt.Errorf("archive: append after Close (seq %d)", c.Seq)
	}
	if !encodable(c.Tx) {
		// A snapshot rotates the log; the pending batch must land in the
		// old segment first.
		if err := a.flushLocked(); err != nil {
			return err
		}
		return a.writeSnapshot(c.Version())
	}
	payload, err := appendTxn(nil, c.Seq, c.Tx)
	if err != nil {
		return err
	}
	if err := checkRecordLen(payload); err != nil {
		return err
	}
	tr := c.Tx.Trace
	if tr != nil {
		if ctx := tr.Ctx(); ctx.Sampled {
			a.putTraceCtx(c.Seq, ctx)
		}
	}
	if a.cfg.group > 0 {
		// Group commit: frame into the batch buffer; the window timer, a
		// full hinted batch (ExpectBatch), or an explicit Flush/Sync/Close
		// issues the write+fsync. Bytes are counted at flush.
		a.buf = appendRecord(a.buf, recTxn, payload)
		a.bufRecs++
		a.cfg.metrics.Buffered()
		if tr != nil {
			a.pendingTr = append(a.pendingTr, pendingTrace{t: tr, at: time.Now().UnixNano()})
		}
	} else {
		var t0 time.Time
		if tr != nil {
			t0 = time.Now()
		}
		rec := appendRecord(nil, recTxn, payload)
		if _, err := a.log.Write(rec); err != nil {
			return fmt.Errorf("archive: append: %w", err)
		}
		if a.cfg.fsync {
			if err := a.syncLog(); err != nil {
				return fmt.Errorf("archive: fsync: %w", err)
			}
		}
		if tr != nil {
			// No group commit: the "group" is this one record, and its
			// durability interval is the write (+fsync) just issued.
			tr.Span(reqtrace.StageGroupCommitFsync, t0, time.Now())
		}
		a.cfg.metrics.Appended(len(rec))
	}
	// Log-shipping tail: subscribers see the record payload the moment it
	// is accepted (possibly before its durable flush — a replica can never
	// be *ahead* of the primary's committed state, only of its fsync).
	for _, fn := range a.tails {
		fn(c.Seq, payload)
	}
	a.sinceSnap++
	if a.cfg.snapshotEvery > 0 && a.sinceSnap >= a.cfg.snapshotEvery {
		if err := a.flushLocked(); err != nil {
			return err
		}
		return a.writeSnapshot(c.Version())
	}
	return nil
}

// flushLocked writes the pending group-commit batch to the log — one write
// and, with Fsync on, one fsync for the whole batch. Must hold a.mu. A
// failure is sticky.
func (a *Archive) flushLocked() error {
	if a.failed != nil {
		return a.failed
	}
	if len(a.buf) == 0 {
		return nil
	}
	if a.log == nil {
		a.failed = fmt.Errorf("archive: %d bytes of batched records pending after Close", len(a.buf))
		return a.failed
	}
	if _, err := a.log.Write(a.buf); err != nil {
		a.failed = fmt.Errorf("archive: flush: %w", err)
		return a.failed
	}
	a.cfg.metrics.Flushed(a.bufRecs, len(a.buf))
	a.buf = a.buf[:0]
	a.bufRecs = 0
	a.expect = 0 // any flush serves every outstanding hint
	if a.cfg.fsync {
		if err := a.syncLog(); err != nil {
			a.failed = fmt.Errorf("archive: fsync: %w", err)
			return a.failed
		}
	}
	// The batch is durable: close the group-commit-fsync span of every
	// traced commit it carried. Recording after the response has already
	// left the node is fine — the trace handle outlives the request and
	// the recorder snapshots under its lock.
	if len(a.pendingTr) > 0 {
		end := time.Now().UnixNano()
		for _, p := range a.pendingTr {
			p.t.SpanNS(reqtrace.StageGroupCommitFsync, p.at, end-p.at)
		}
		a.pendingTr = a.pendingTr[:0]
	}
	return nil
}

// syncLog fsyncs the open log segment, timing it into the metrics when
// instrumented. The clock reads are gated so an uninstrumented archive
// never pays them.
func (a *Archive) syncLog() error {
	if a.cfg.metrics == nil {
		return a.log.Sync()
	}
	start := time.Now()
	err := a.log.Sync()
	a.cfg.metrics.Fsync(time.Since(start))
	return err
}

// Flush writes any pending group-commit batch to the log (and syncs it
// when Fsync is on). A no-op without group commit or with an empty batch.
func (a *Archive) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushLocked()
}

// Observer adapts the archive to the engine's post-commit hook. Failures
// are sticky and surface on Close (and Err): once a write cannot be made
// durable, the archive stops advancing rather than recording a gap.
func (a *Archive) Observer() core.CommitObserver {
	return func(c core.Commit) { _ = a.Append(c) }
}

// TailFunc receives one committed transaction record from a log-tail
// subscription: the engine sequence it committed as, and the recTxn
// payload bytes (decode with DecodeTxnRecord; do not mutate or retain the
// slice past the call). It runs under the archive mutex — on the commit
// path — so it must only hand the record off (e.g. enqueue a copy), never
// block or call back into the archive.
type TailFunc func(seq int64, payload []byte)

// SubscribeTxns streams the committed-transaction log: every record with
// sequence > after, in order, with no gap between the durable history and
// the live tail — the replay and the registration happen under one mutex
// acquisition, after flushing any pending group-commit batch. It is the
// primary side of cluster log shipping: the archive's durability log is
// the replication stream.
//
// Catch-up reads the log segments on disk, so after must be at or beyond
// the base of the oldest retained segment (compaction can remove earlier
// history; a subscriber that far behind needs a snapshot bootstrap, which
// this API deliberately does not hide). Custom transactions have no
// record form — they force snapshots instead — so they never appear in
// the stream; a subscriber tracking contiguous sequences detects the gap
// and must resynchronize.
//
// cancel unregisters the subscription; it is safe to call more than once
// and after Close.
func (a *Archive) SubscribeTxns(after int64, fn TailFunc) (cancel func(), err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failed != nil {
		return nil, a.failed
	}
	if err := a.flushLocked(); err != nil {
		return nil, err
	}
	// Replay the durable history behind the tail. Segment bases are
	// snapshot sequences: every record with seq > logs[0] lives in some
	// retained segment, so the oldest base bounds how far back a
	// subscriber may start.
	st, err := scanDir(a.dir)
	if err != nil {
		return nil, err
	}
	if len(st.logs) == 0 || after < st.logs[0] {
		oldest := int64(-1)
		if len(st.logs) > 0 {
			oldest = st.logs[0]
		}
		return nil, fmt.Errorf("%w: after %d (oldest segment base %d)", ErrLogTrimmed, after, oldest)
	}
	for _, seg := range st.logs {
		lc, err := readLog(a.dir, seg)
		if err != nil {
			return nil, err
		}
		for _, e := range lc.entries {
			if e.Seq <= after {
				continue
			}
			payload, err := appendTxn(nil, e.Seq, e.Tx)
			if err != nil {
				return nil, err
			}
			fn(e.Seq, payload)
		}
	}
	if a.tails == nil {
		a.tails = make(map[uint64]TailFunc)
	}
	id := a.nextSubID
	a.nextSubID++
	a.tails[id] = fn
	return func() {
		a.mu.Lock()
		delete(a.tails, id)
		a.mu.Unlock()
	}, nil
}

// writeSnapshot durably writes db as snap-<version> and rotates the log to
// a fresh segment based at that version. The snapshot file appears
// atomically (write to temp, fsync, rename), so a crash mid-snapshot
// leaves the previous snapshot + log pair authoritative.
func (a *Archive) writeSnapshot(db *database.Database) error {
	seq := db.Version()
	payload, err := database.AppendSnapshot(nil, db)
	if err != nil {
		return err
	}
	if err := checkRecordLen(payload); err != nil {
		return err
	}
	buf := appendRecord(nil, recHeader, headerPayload(recSnapshot, seq))
	buf = appendRecord(buf, recSnapshot, payload)

	path := filepath.Join(a.dir, snapName(seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("archive: snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("archive: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("archive: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("archive: snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("archive: snapshot: %w", err)
	}
	a.cfg.metrics.SnapshotWritten(len(buf))

	// Rotate: the new segment holds transactions after this snapshot.
	if a.log != nil {
		if err := a.log.Sync(); err != nil {
			return fmt.Errorf("archive: rotate: %w", err)
		}
		if err := a.log.Close(); err != nil {
			return fmt.Errorf("archive: rotate: %w", err)
		}
	}
	nf, err := os.OpenFile(filepath.Join(a.dir, logName(seq)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("archive: rotate: %w", err)
	}
	if _, err := nf.Write(appendRecord(nil, recHeader, headerPayload(recTxn, seq))); err != nil {
		nf.Close()
		return fmt.Errorf("archive: rotate: %w", err)
	}
	a.log = nf
	a.logBase = seq
	a.lastSeq = seq
	a.sinceSnap = 0
	return nil
}

// Snapshot forces a full snapshot of the given version (which must be the
// archive's current version) and rotates the log.
func (a *Archive) Snapshot(db *database.Database) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failed != nil {
		return a.failed
	}
	if db.Version() != a.lastSeq {
		return fmt.Errorf("archive: snapshot of version %d, but archive is at %d", db.Version(), a.lastSeq)
	}
	if err := a.flushLocked(); err != nil {
		return err
	}
	if err := a.writeSnapshot(db); err != nil {
		a.failed = err
		return err
	}
	return nil
}

// Sync flushes any pending group-commit batch and fsyncs the log segment
// to stable storage.
func (a *Archive) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.flushLocked(); err != nil {
		return err
	}
	if err := a.syncLog(); err != nil {
		a.failed = fmt.Errorf("archive: fsync: %w", err)
		return a.failed
	}
	return nil
}

// LastSeq returns the newest durable sequence number.
func (a *Archive) LastSeq() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastSeq
}

// Err returns the sticky failure, if any append has failed.
func (a *Archive) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.failed
}

// Close flushes the pending group-commit batch, syncs and closes the
// archive. It returns the sticky append failure if one occurred, so
// callers learn their store outlived its durability.
func (a *Archive) Close() error {
	a.stopFlusher() // before taking mu: the flusher takes mu to flush
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.log != nil {
		ferr := a.flushLocked()
		serr := a.log.Sync()
		cerr := a.log.Close()
		a.log = nil
		if a.failed == nil {
			if ferr != nil {
				a.failed = ferr
			} else if serr != nil {
				a.failed = serr
			} else if cerr != nil {
				a.failed = cerr
			}
		}
	}
	return a.failed
}

// Dir returns the archive directory.
func (a *Archive) Dir() string { return a.dir }

// VersionAt materializes the on-disk version numbered seq: time travel
// against the durable stream, independent of any in-memory history. The
// mutex excludes concurrent appends, and any pending group-commit batch is
// flushed first; same-system reads then see every written byte through the
// page cache, so no fsync is needed.
func (a *Archive) VersionAt(seq int64) (*database.Database, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.flushLocked(); err != nil {
		return nil, err
	}
	return VersionAt(a.dir, seq)
}
