package archive

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"funcdb/internal/core"
	"funcdb/internal/value"
)

func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	var buf []byte
	for i, p := range payloads {
		buf = appendRecord(buf, byte(i+1), p)
	}
	rd := &reader{r: bytes.NewReader(buf)}
	for i, p := range payloads {
		rec, err := rd.next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.typ != byte(i+1) || !bytes.Equal(rec.payload, p) {
			t.Fatalf("record %d: got type %d payload %d bytes", i, rec.typ, len(rec.payload))
		}
	}
	if _, err := rd.next(); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream: %v", err)
	}
	if rd.off != int64(len(buf)) {
		t.Fatalf("offset %d after %d bytes", rd.off, len(buf))
	}
}

// TestRecordTruncation cuts a two-record stream at every byte boundary:
// the reader must yield the valid prefix and then a clean truncation (or
// EOF), never a panic and never a bogus record.
func TestRecordTruncation(t *testing.T) {
	first := appendRecord(nil, recTxn, []byte("first payload"))
	full := appendRecord(first, recTxn, []byte("second payload"))
	for cut := 0; cut <= len(full); cut++ {
		rd := &reader{r: bytes.NewReader(full[:cut])}
		var got int
		var err error
		for {
			var rec record
			rec, err = rd.next()
			if err != nil {
				break
			}
			if rec.typ != recTxn {
				t.Fatalf("cut %d: bad record type %d", cut, rec.typ)
			}
			got++
		}
		wantRecords := 0
		if cut >= len(first) {
			wantRecords = 1
		}
		if cut == len(full) {
			wantRecords = 2
		}
		if got != wantRecords {
			t.Fatalf("cut %d: read %d records, want %d", cut, got, wantRecords)
		}
		cleanCut := cut == len(full) || cut == len(first) || cut == 0
		if cleanCut && !errors.Is(err, io.EOF) {
			t.Fatalf("cut %d: want EOF, got %v", cut, err)
		}
		if !cleanCut && !errors.Is(err, errTruncated) {
			t.Fatalf("cut %d: want truncation, got %v", cut, err)
		}
	}
}

// TestRecordBitFlips flips every byte of a framed record in turn: the
// reader must fail with ErrCorrupt (or a truncation if the length field
// now overshoots), never panic, and never return the altered payload as
// valid.
func TestRecordBitFlips(t *testing.T) {
	payload := []byte("the payload under test")
	clean := appendRecord(nil, recTxn, payload)
	for i := range clean {
		mutated := append([]byte(nil), clean...)
		mutated[i] ^= 0x41
		rd := &reader{r: bytes.NewReader(mutated)}
		rec, err := rd.next()
		if err == nil {
			t.Fatalf("flip at %d: record accepted (type %d, %d bytes)", i, rec.typ, len(rec.payload))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v", i, err)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	for _, seq := range []int64{0, 1, 1 << 40} {
		kind, base, err := decodeHeader(headerPayload(recTxn, seq))
		if err != nil || kind != recTxn || base != seq {
			t.Fatalf("seq %d: kind %d base %d err %v", seq, kind, base, err)
		}
	}
	bad := [][]byte{nil, []byte("xxxx"), []byte(magic), append([]byte(magic), 99, recTxn, 0)}
	for i, p := range bad {
		if _, _, err := decodeHeader(p); err == nil {
			t.Errorf("case %d: bad header accepted", i)
		}
	}
}

func TestTxnRecordRoundTrip(t *testing.T) {
	txns := []core.Transaction{
		core.Insert("R", value.NewTuple(value.Int(1), value.Str("widget"))),
		core.Delete("R", value.Int(1)),
		core.Create("S", 2),
		{Kind: core.KindInsert, Rel: "R", Tuple: value.NewTuple(value.Int(7)), Origin: "repl", Seq: 3, Query: `insert 7 into R`},
	}
	for i, tx := range txns {
		payload, err := appendTxn(nil, int64(i+1), tx)
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		got, err := decodeTxn(payload)
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		if got.Seq != int64(i+1) || got.Tx.Kind != tx.Kind || got.Tx.Rel != tx.Rel {
			t.Fatalf("txn %d: round trip %+v -> %+v", i, tx, got.Tx)
		}
		if got.Tx.Origin != tx.Origin || got.Tx.Seq != tx.Seq || got.Tx.Query != tx.Query {
			t.Fatalf("txn %d: tag lost: %+v", i, got.Tx)
		}
		if tx.Kind == core.KindInsert && !got.Tx.Tuple.Equal(tx.Tuple) {
			t.Fatalf("txn %d: tuple %v -> %v", i, tx.Tuple, got.Tx.Tuple)
		}
	}
	if _, err := appendTxn(nil, 1, core.Custom(nil, nil, []string{"R"})); err == nil {
		t.Error("custom transaction encoded")
	}
}

// TestPropertyDecodersNeverPanic mirrors TestPropertyDecodeNeverPanics in
// internal/value: arbitrary bytes through every archive decoder must yield
// errors, not panics.
func TestPropertyDecodersNeverPanic(t *testing.T) {
	f := func(buf []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %v: %v", buf, r)
				ok = false
			}
		}()
		rd := &reader{r: bytes.NewReader(buf)}
		for {
			if _, err := rd.next(); err != nil {
				break
			}
		}
		_, _ = decodeTxn(buf)
		_, _, _ = decodeHeader(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMutatedTxnStreamNeverPanics frames random valid transaction
// records, then corrupts the stream at a random position: reading must
// terminate with a clean result, never panic.
func TestPropertyMutatedTxnStreamNeverPanics(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic for seed %d: %v", seed, r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		buf := appendRecord(nil, recHeader, headerPayload(recTxn, 0))
		for i := 0; i < 1+r.Intn(5); i++ {
			tx := core.Insert("R", value.NewTuple(value.Int(r.Int63n(100)), value.Str("v")))
			payload, err := appendTxn(nil, int64(i+1), tx)
			if err != nil {
				return false
			}
			buf = appendRecord(buf, recTxn, payload)
		}
		switch r.Intn(3) {
		case 0: // truncate
			buf = buf[:r.Intn(len(buf)+1)]
		case 1: // flip a byte
			buf[r.Intn(len(buf))] ^= byte(1 + r.Intn(255))
		case 2: // leave intact
		}
		rd := &reader{r: bytes.NewReader(buf)}
		for {
			rec, err := rd.next()
			if err != nil {
				return true
			}
			if rec.typ == recTxn {
				_, _ = decodeTxn(rec.payload)
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// FuzzReadRecord is the fuzz entry for the framed reader: any input must
// produce records or errors, never a panic, and any framed prefix must
// decode back to itself.
func FuzzReadRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendRecord(nil, recTxn, []byte("seed")))
	f.Add(appendRecord(appendRecord(nil, recHeader, headerPayload(recTxn, 3)), recTxn, []byte{1, 2, 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := &reader{r: bytes.NewReader(data)}
		for {
			rec, err := rd.next()
			if err != nil {
				break
			}
			// A valid frame must survive re-encoding.
			again := appendRecord(nil, rec.typ, rec.payload)
			if int64(len(again)) > rd.off {
				t.Fatalf("frame longer than consumed input")
			}
			if rec.typ == recTxn {
				_, _ = decodeTxn(rec.payload)
			}
		}
	})
}
