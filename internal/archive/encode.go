package archive

import (
	"encoding/binary"
	"fmt"

	"funcdb/internal/core"
	"funcdb/internal/query"
	"funcdb/internal/relation"
	"funcdb/internal/value"
)

// Transaction record codec. A recTxn payload is:
//
//	txn := seq:varint        engine sequence of the version it produced
//	       origin:string     tag of Section 2.4
//	       oseq:varint       per-origin sequence
//	       query:string      symbolic source text ("" when submitted as a
//	                         constructed Transaction)
//	       kind:uint8
//	       rel:string
//	       kind-specific:    insert: tuple | delete: key | create: rep
//
// Replay prefers re-running the stored query text through query.Translate —
// the paper's translate is the authoritative query → transaction function —
// and falls back to the structural fields for transactions that never had
// symbolic form.

// AppendTxnRecord encodes one committed transaction as a recTxn payload:
// the exact bytes a log record carries, exported so the cluster layer can
// reframe the durability log as its replication stream (wire
// FrameLogRecord payloads are these bytes verbatim).
func AppendTxnRecord(dst []byte, seq int64, tx core.Transaction) ([]byte, error) {
	return appendTxn(dst, seq, tx)
}

// DecodeTxnRecord decodes a recTxn payload back into the engine sequence
// it committed as and the replayable transaction: the receiving end of
// the log-shipping stream. Trailing bytes beyond the record are corrupt;
// a subscriber that negotiated protocol version 5 — where the primary may
// stamp a trace-context suffix onto stream records — must use
// DecodeTxnRecordTail instead.
func DecodeTxnRecord(payload []byte) (seq int64, tx core.Transaction, err error) {
	lt, rest, err := decodeTxnTail(payload)
	if err != nil {
		return 0, core.Transaction{}, err
	}
	if len(rest) != 0 {
		return 0, core.Transaction{}, fmt.Errorf("%w: transaction record: trailing bytes", ErrCorrupt)
	}
	return lt.Seq, lt.Tx, nil
}

// DecodeTxnRecordTail decodes a recTxn payload and returns any unconsumed
// trailing bytes instead of rejecting them. The log records on disk never
// have a tail; records on a version-5 replication stream may carry the
// 10-byte wire trace-context suffix, which the subscriber splits off here
// and interprets with wire.DecodeTraceCtx.
func DecodeTxnRecordTail(payload []byte) (seq int64, tx core.Transaction, rest []byte, err error) {
	lt, rest, err := decodeTxnTail(payload)
	if err != nil {
		return 0, core.Transaction{}, nil, err
	}
	return lt.Seq, lt.Tx, rest, nil
}

// Encodable reports whether a committed transaction has a log-record wire
// form (custom transactions do not: they snapshot instead, and never
// appear in a subscription stream).
func Encodable(tx core.Transaction) bool { return encodable(tx) }

// loggedTxn is one decoded log entry.
type loggedTxn struct {
	// Seq is the engine sequence number of the version the commit
	// produced.
	Seq int64
	// Tx is the replayable transaction.
	Tx core.Transaction
}

// encodable reports whether a committed transaction can be carried by a
// recTxn record. Custom transactions carry arbitrary Go closures, which
// have no wire form — the archive snapshots the resulting version instead.
func encodable(tx core.Transaction) bool {
	switch tx.Kind {
	case core.KindInsert, core.KindDelete, core.KindCreate:
		return true
	default:
		return false
	}
}

// appendTxn appends the payload for one committed transaction.
func appendTxn(dst []byte, seq int64, tx core.Transaction) ([]byte, error) {
	dst = binary.AppendVarint(dst, seq)
	dst = value.AppendString(dst, tx.Origin)
	dst = binary.AppendVarint(dst, int64(tx.Seq))
	dst = value.AppendString(dst, tx.Query)
	dst = append(dst, byte(tx.Kind))
	dst = value.AppendString(dst, tx.Rel)
	switch tx.Kind {
	case core.KindInsert:
		return value.AppendTuple(dst, tx.Tuple)
	case core.KindDelete:
		return value.AppendItem(dst, tx.Key)
	case core.KindCreate:
		return append(dst, byte(tx.Rep)), nil
	default:
		return dst, fmt.Errorf("archive: transaction kind %v has no wire form", tx.Kind)
	}
}

// decodeTxn decodes one transaction payload, rejecting trailing bytes.
func decodeTxn(payload []byte) (loggedTxn, error) {
	lt, rest, err := decodeTxnTail(payload)
	if err != nil {
		return loggedTxn{}, err
	}
	if len(rest) != 0 {
		return loggedTxn{}, fmt.Errorf("%w: transaction record: trailing bytes", ErrCorrupt)
	}
	return lt, nil
}

// decodeTxnTail decodes one transaction payload and returns the
// unconsumed tail: the shared core of the strict decoder (log files, where
// a tail is corruption) and the suffix-tolerant stream decoder (where the
// tail is a trace context).
func decodeTxnTail(payload []byte) (loggedTxn, []byte, error) {
	fail := func(what string) (loggedTxn, []byte, error) {
		return loggedTxn{}, nil, fmt.Errorf("%w: transaction record: bad %s", ErrCorrupt, what)
	}
	seq, n := binary.Varint(payload)
	if n <= 0 {
		return fail("sequence")
	}
	payload = payload[n:]
	origin, payload, err := value.DecodeString(payload)
	if err != nil {
		return fail("origin")
	}
	oseq, n := binary.Varint(payload)
	if n <= 0 {
		return fail("origin sequence")
	}
	payload = payload[n:]
	src, payload, err := value.DecodeString(payload)
	if err != nil {
		return fail("query text")
	}
	if len(payload) == 0 {
		return fail("kind")
	}
	kind := core.Kind(payload[0])
	payload = payload[1:]
	rel, payload, err := value.DecodeString(payload)
	if err != nil {
		return fail("relation name")
	}

	tx := core.Transaction{Kind: kind, Rel: rel}
	switch kind {
	case core.KindInsert:
		tu, rest, err := value.DecodeTuple(payload)
		if err != nil {
			return fail("tuple")
		}
		tx.Tuple = tu
		payload = rest
	case core.KindDelete:
		key, rest, err := value.DecodeItem(payload)
		if err != nil {
			return fail("key")
		}
		tx.Key = key
		payload = rest
	case core.KindCreate:
		if len(payload) == 0 {
			return fail("representation")
		}
		rep := relation.Rep(payload[0])
		switch rep {
		case relation.RepList, relation.RepAVL, relation.Rep23, relation.RepPaged:
			tx.Rep = rep
		default:
			return fail("representation")
		}
		payload = payload[1:]
	default:
		return fail("kind")
	}

	// The symbolic source, when present, is the authoritative form: replay
	// it through the paper's translate. The structural fields above remain
	// the fallback (and the validation that the record is well-formed).
	if src != "" {
		if ttx, terr := query.Translate(src); terr == nil {
			tx = ttx
		}
	}
	tx.Origin, tx.Seq, tx.Query = origin, int(oseq), src
	return loggedTxn{Seq: seq, Tx: tx}, payload, nil
}
