package funcdb_test

import (
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"funcdb"
	"funcdb/client"
	"funcdb/internal/core"
	"funcdb/internal/reqtrace"
)

// bootTracedCluster spins up an n-node loopback cluster with tracing on
// (every request sampled) and returns the addresses and nodes. Cleanup
// is registered on t.
func bootTracedCluster(t *testing.T, n int) ([]string, []*funcdb.ClusterNode) {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*funcdb.ClusterNode, n)
	for i := range nodes {
		node, err := funcdb.OpenClusterNode(funcdb.ClusterNodeConfig{
			ID: i, Nodes: addrs, Listener: lns[i],
			Dir:       filepath.Join(dir, fmt.Sprintf("n%d", i)),
			Relations: []string{"R", "S", "T"},
			Tracing:   &funcdb.TracingConfig{SampleEvery: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		go node.Serve()
		t.Cleanup(func() { node.Shutdown() })
	}
	return addrs, nodes
}

// TestTracePropagationThreeNodes drives ONE sampled write through the
// longest path a request can take — client → gateway (a node that does
// not own the relation) → owning primary → mirror apply — and asserts
// a single trace id stitches fragments from every hop, collected from
// both trace surfaces the library offers: the ClusterNode.Traces API
// and the wire Traces frame.
func TestTracePropagationThreeNodes(t *testing.T) {
	addrs, nodes := bootTracedCluster(t, 3)

	// A relation NOT owned by node 0, so dialing node 0 makes it a
	// gateway that must forward (placement is the lane hash).
	rel := ""
	for _, r := range []string{"R", "S", "T"} {
		if core.LaneOf(r, 3) != 0 {
			rel = r
			break
		}
	}
	if rel == "" {
		t.Fatal("no relation maps off node 0")
	}
	owner := core.LaneOf(rel, 3)

	cl, err := client.Dial(addrs[0], client.WithOrigin("tracer"),
		client.WithTracing(funcdb.TracingConfig{SampleEvery: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Exec(fmt.Sprintf("insert (7, \"traced\") into %s", rel))
	if err != nil || resp.Err != nil {
		t.Fatalf("traced insert: %v %v", err, resp.Err)
	}

	local := cl.LocalTraces()
	if len(local) != 1 || local[0].Hop != 0 {
		t.Fatalf("client recorded %d traces, want exactly the one sampled request at hop 0", len(local))
	}
	id := local[0].ID

	// The mirror's apply leg is asynchronous: poll until every hop's
	// fragment is published, then assert the shape.
	deadline := time.Now().Add(5 * time.Second)
	var all []funcdb.RequestTrace
	hops := map[int]bool{}
	for {
		all = all[:0]
		all = append(all, local...)
		for _, node := range nodes {
			all = append(all, node.Traces()...)
		}
		hops = map[int]bool{}
		for _, tr := range all {
			if tr.ID == id {
				hops[tr.Hop] = true
			}
		}
		if hops[0] && hops[1] && hops[2] && hops[3] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never completed: hops seen %v (want 0..3: client, gateway, owner, mirror)", id, hops)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// One stitched group, with the stages each role must have recorded.
	var group []funcdb.RequestTrace
	for _, g := range reqtrace.Stitch(all) {
		if g[0].ID == id {
			group = g
			break
		}
	}
	stagesAt := func(hop int) map[string]bool {
		out := map[string]bool{}
		for _, tr := range group {
			if tr.Hop != hop {
				continue
			}
			for _, s := range tr.Spans {
				out[s.Stage] = true
			}
		}
		return out
	}
	if !stagesAt(0)["client-send"] {
		t.Errorf("client fragment missing client-send: %v", stagesAt(0))
	}
	gw := stagesAt(1)
	for _, want := range []string{"conn-read", "decode", "forward-hop", "flush"} {
		if !gw[want] {
			t.Errorf("gateway fragment missing %s: %v", want, gw)
		}
	}
	own := stagesAt(2)
	for _, want := range []string{"decode", "lane-commit", "flush"} {
		if !own[want] {
			t.Errorf("owner fragment missing %s: %v", want, own)
		}
	}
	if !stagesAt(3)["replica-apply"] {
		t.Errorf("mirror fragment missing replica-apply: %v", stagesAt(3))
	}
	for _, tr := range group {
		switch tr.Hop {
		case 0:
			if !strings.HasPrefix(tr.Node, "client:") {
				t.Errorf("hop 0 on %q, want the client", tr.Node)
			}
		case 2:
			if tr.Node != fmt.Sprintf("node%d", owner) {
				t.Errorf("hop 2 on %q, want the owner node%d", tr.Node, owner)
			}
		}
	}

	// Second surface: the wire Traces frame must serve the gateway's
	// fragment of the same trace.
	remote, err := cl.Traces()
	if err != nil {
		t.Fatalf("wire Traces: %v", err)
	}
	found := false
	for _, tr := range remote {
		if tr.ID == id && tr.Hop == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("wire Traces from the gateway does not carry trace %s at hop 1", id)
	}

	// And the renderer must lay the whole journey out as one tree.
	text := reqtrace.Render(group)
	if !strings.Contains(text, id) || !strings.Contains(text, "replica-apply") {
		t.Errorf("rendered trace incomplete:\n%s", text)
	}
}

// TestTraceDisabledIsInvisible checks the default: with no Tracing
// config the cluster publishes nothing and the client refuses nothing —
// requests run exactly as before, Traces just comes back empty.
func TestTraceDisabledIsInvisible(t *testing.T) {
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node, err := funcdb.OpenClusterNode(funcdb.ClusterNodeConfig{
		ID: 0, Nodes: []string{ln.Addr().String()}, Listener: ln,
		Dir: filepath.Join(dir, "n0"), Relations: []string{"R"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Shutdown() })
	go node.Serve()

	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if resp, err := cl.Exec(`insert (1, "v") into R`); err != nil || resp.Err != nil {
		t.Fatalf("exec: %v %v", err, resp.Err)
	}
	if ts := node.Traces(); len(ts) != 0 {
		t.Errorf("untraced node published %d traces", len(ts))
	}
	if ts, err := cl.Traces(); err != nil || len(ts) != 0 {
		t.Errorf("wire Traces on an untraced node = %d traces, %v", len(ts), err)
	}
}
