// Streams: the paper's Figure 2-1 program run literally, on an unbounded
// transaction stream. apply-stream is demand-driven: asking for the first
// k responses runs exactly k transactions of an infinite stream — "input
// sequences of unknown or infinite length, called streams, are bona fide
// data objects."
package main

import (
	"fmt"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/lenient"
	"funcdb/internal/query"
	"funcdb/internal/relation"
)

func main() {
	initial := database.New(relation.RepList, "log")

	// An endless terminal: every demand produces the next query. No 1000th
	// element exists until someone asks for it.
	queries := lenient.Generate(func(i int) (string, bool) {
		if i%3 == 2 {
			return "count log", true
		}
		return fmt.Sprintf("insert (%d, \"event\") into log", i), true
	})

	// transactions = translate || queries   (apply-to-all, tagged with the
	// terminal's sequence numbers)
	seqs := lenient.Generate(func(i int) (int, bool) { return i, true })
	txns := lenient.ZipWith(func(q string, i int) core.Transaction {
		tx := query.MustTranslate(q)
		tx.Origin, tx.Seq = "term", i
		return tx
	}, queries, seqs)

	// [responses, new-databases] = apply-stream:[transactions, old-databases]
	// old-databases = initial-database ^ new-databases
	responses, dbs := core.ApplyStreamEquations(initial, txns)

	fmt.Println("demanding 9 responses from an infinite transaction stream:")
	for _, r := range lenient.TakeSlice(responses, 9) {
		fmt.Printf("  %s\n", r)
	}

	// The database stream is equally demand-driven; version 6 is the
	// database after six transactions.
	versions := lenient.TakeSlice(dbs, 7)
	v6 := versions[6]
	fmt.Printf("\nversion 6 of the database stream holds %d tuples\n", v6.TotalTuples())
	fmt.Println("(the stream continues forever; nothing beyond what was demanded ever ran)")
}
