// Banking: several tellers submit transfers concurrently against one
// accounts relation. This is the paper's Section 2.4 scenario: multiple
// user streams pass through the pseudo-functional merge; processing the
// merged stream is serializable, so money is conserved — with no locks in
// this file.
package main

import (
	"fmt"
	"log"
	"sync"

	"funcdb"
	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/trace"
)

const (
	accounts   = 16
	tellers    = 6
	transfers  = 200
	initialBal = 1000
)

func main() {
	// Seed every account with the same balance.
	opts := []funcdb.Option{funcdb.WithRepresentation(funcdb.RepAVL)}
	for i := 0; i < accounts; i++ {
		opts = append(opts, funcdb.WithData("accounts",
			funcdb.NewTuple(funcdb.Int(int64(i)), funcdb.Int(initialBal))))
	}
	store := funcdb.MustOpen(opts...)

	fmt.Printf("%d accounts x %d = total %d\n", accounts, initialBal, accounts*initialBal)

	// Each teller is one client stream; Submit is the merge point. A
	// transfer is a custom transaction: read two balances, write two
	// balances, all against one immutable database version.
	var wg sync.WaitGroup
	for tlr := 0; tlr < tellers; tlr++ {
		wg.Add(1)
		go func(tlr int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := int64((tlr + i) % accounts)
				to := int64((tlr*7 + i*3 + 1) % accounts)
				if from == to {
					continue
				}
				amount := int64(1 + (i % 50))
				tx := transfer(from, to, amount)
				tx.Origin = fmt.Sprintf("teller%d", tlr)
				if resp := store.Submit(tx).Force(); resp.Err != nil {
					log.Fatalf("transfer failed: %v", resp.Err)
				}
			}
		}(tlr)
	}
	wg.Wait()
	store.Barrier()

	// The invariant: serializable processing conserves the total.
	total := int64(0)
	rel, _ := store.Current().RelationFast("accounts")
	for _, tu := range rel.Tuples() {
		total += tu.Field(1).AsInt()
	}
	fmt.Printf("after %d concurrent transfers from %d tellers: total %d\n",
		tellers*transfers, tellers, total)
	if total != accounts*initialBal {
		log.Fatalf("MONEY NOT CONSERVED: %d != %d", total, accounts*initialBal)
	}
	fmt.Println("total conserved: the merged stream processed serializably, no locks in sight")
}

// transfer builds the custom read-modify-write transaction.
func transfer(from, to, amount int64) funcdb.Transaction {
	return core.Custom(func(ctx *eval.Ctx, db *database.Database, after trace.TaskID) (core.Response, *database.Database, trace.Op) {
		src, okS, _, err := db.Find(ctx, "accounts", funcdb.Int(from), after)
		if err != nil || !okS {
			return core.Response{Err: fmt.Errorf("missing account %d", from)}, db, trace.Op{}
		}
		dst, okD, _, err := db.Find(ctx, "accounts", funcdb.Int(to), after)
		if err != nil || !okD {
			return core.Response{Err: fmt.Errorf("missing account %d", to)}, db, trace.Op{}
		}
		if src.Field(1).AsInt() < amount {
			// Insufficient funds: a read-only outcome; the database flows
			// through unchanged.
			return core.Response{Note: "declined"}, db, trace.Op{}
		}
		db1, _, err := db.Insert(ctx, "accounts",
			funcdb.NewTuple(funcdb.Int(from), funcdb.Int(src.Field(1).AsInt()-amount)), after)
		if err != nil {
			return core.Response{Err: err}, db, trace.Op{}
		}
		db2, op, err := db1.Insert(ctx, "accounts",
			funcdb.NewTuple(funcdb.Int(to), funcdb.Int(dst.Field(1).AsInt()+amount)), after)
		if err != nil {
			return core.Response{Err: err}, db, trace.Op{}
		}
		return core.Response{Note: "ok"}, db2, op
	}, []string{"accounts"}, []string{"accounts"})
}
