// Inventory: a parts catalog on the paged B-tree representation —
// Figure 2-2 of the paper made tangible. Each restock copies only the
// root-to-leaf page path; every other page is shared with the previous
// version of the catalog ("a new directory structure is created, the old
// one being left intact").
package main

import (
	"fmt"
	"log"

	"funcdb"
	"funcdb/internal/relation"
)

const parts = 2000

func main() {
	opts := []funcdb.Option{funcdb.WithRepresentation(funcdb.RepPaged)}
	for i := 0; i < parts; i++ {
		opts = append(opts, funcdb.WithData("parts",
			funcdb.NewTuple(funcdb.Int(int64(i)), funcdb.Str("part"), funcdb.Int(100))))
	}
	store := funcdb.MustOpen(opts...)

	before := store.Current()
	relBefore, _ := before.RelationFast("parts")
	pagedBefore, ok := relation.Paged(relBefore)
	if !ok {
		log.Fatal("parts relation is not paged")
	}
	fmt.Printf("catalog: %d parts in %d pages (height %d, page cap %d)\n",
		relBefore.Len(), pagedBefore.PageCount(), pagedBefore.Height(), pagedBefore.PageCap())

	// One restock.
	if _, err := store.Exec(`insert (777, "part", 350) into parts`); err != nil {
		log.Fatal(err)
	}
	store.Barrier()

	after := store.Current()
	relAfter, _ := after.RelationFast("parts")
	pagedAfter, _ := relation.Paged(relAfter)
	shared := pagedAfter.SharedPagesWith(pagedBefore)
	total := pagedAfter.PageCount()
	fmt.Printf("after one restock: %d of %d pages shared with the old catalog (%d copied)\n",
		shared, total, total-shared)

	// Range queries work on any retained version, old or new.
	resp, err := store.Exec("range 770 780 in parts")
	if err != nil || resp.Err != nil {
		log.Fatal(err, resp.Err)
	}
	fmt.Printf("parts 770-780 in current catalog: %d tuples\n", resp.Count)

	// The old version still answers queries — it was never modified.
	tuples, _, err := before.RangeScan(nil, "parts", funcdb.Int(770), funcdb.Int(780), 0)
	if err != nil {
		log.Fatal(err)
	}
	var oldStock int64 = -1
	for _, tu := range tuples {
		if tu.Key().AsInt() == 777 {
			oldStock = tu.Field(2).AsInt()
		}
	}
	fmt.Printf("part 777 stock: old version %d, new version 350\n", oldStock)
}
