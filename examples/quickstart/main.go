// Quickstart: open a functional store, run a few transactions, and look at
// what the functional approach gives you for free — a version stream you
// can query at any point (time travel) and structure sharing between
// versions.
package main

import (
	"fmt"
	"log"

	"funcdb"
	"funcdb/internal/relalg"
)

func main() {
	// A store with one relation and a complete version archive.
	store, err := funcdb.Open(
		funcdb.WithRelations("employees"),
		funcdb.WithHistory(0),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Every query is a transaction: a function from one database version
	// to the next.
	queries := []string{
		`insert (3, "edsger", "theory") into employees`,
		`insert (2, "grace", "systems") into employees`,
		`insert (1, "ada", "engineering") into employees`,
		`find 2 in employees`,
		`delete 3 from employees`,
		`scan employees`,
	}
	for _, q := range queries {
		resp, err := store.Exec(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		fmt.Printf("%-45s -> %s\n", q, resp)
	}

	// Time travel: the version stream retains every database the
	// transactions produced. Version 3 is the database after the three
	// inserts, before the delete.
	v3, err := store.History().Version(3)
	if err != nil {
		log.Fatal(err)
	}
	rel, _ := v3.RelationFast("employees")
	fmt.Printf("\nversion 3 still has %d employees (the delete produced version 4, it did not mutate)\n", rel.Len())

	// Sharing: the versions above physically share almost everything.
	stats := store.Stats()
	fmt.Printf("cells created: %d, cells shared: %d (%.0f%% of result structure reused)\n",
		stats.Created, stats.Shared, 100*stats.Fraction)

	// Functional queries: relational algebra as lazy stream pipelines over
	// any (current or historical) version.
	cur, _ := store.Current().RelationFast("employees")
	groups := relalg.GroupCount(2, relalg.Scan(cur))
	fmt.Println("\nheadcount by department (current version):")
	for _, g := range groups {
		fmt.Printf("  %-14s %d\n", g.Field(0).AsString(), g.Field(1).AsInt())
	}
}
