// Durable: the version stream on disk. The store archives every committed
// write (snapshot + append-only log, internal/archive), so the program
// survives its own restarts: run it twice and the second run recovers the
// first run's database — and can still time-travel into it.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"funcdb"
)

func main() {
	dir := filepath.Join(os.TempDir(), "funcdb-durable-example")

	// First run: create the archive, write, crash-free close.
	if !exists(dir) {
		fmt.Println("first run: creating a durable store in", dir)
		store, err := funcdb.Open(
			funcdb.WithDurability(dir, funcdb.SnapshotEvery(4)),
			funcdb.WithRelations("ledger"),
		)
		if err != nil {
			log.Fatal(err)
		}
		for i := 1; i <= 10; i++ {
			q := fmt.Sprintf(`insert (%d, "entry-%d", %d) into ledger`, i, i, i*100)
			if _, err := store.Exec(q); err != nil {
				log.Fatal(err)
			}
		}
		if err := store.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote versions 1..10; run me again to recover them")
		return
	}

	// Later runs: recover, inspect the stream, time travel, keep writing.
	store, err := funcdb.OpenDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	cur := store.Current()
	fmt.Printf("recovered version %d: %d tuples\n", cur.Version(), cur.TotalTuples())

	infos, err := store.ArchivedVersions()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the archive retains %d versions on disk; the first few:\n", len(infos))
	for _, v := range infos[:min(4, len(infos))] {
		fmt.Printf("  version %d: %-8s %s\n", v.Seq, v.Kind, v.Detail)
	}

	// On-disk time travel: any archived version is still a database.
	v5, err := store.VersionAt(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("version 5, materialized from disk, has %d tuples\n", v5.TotalTuples())

	// The stream continues across restarts.
	resp, err := store.Exec(fmt.Sprintf(`insert (%d, "post-restart", 0) into ledger`, cur.Version()+100))
	if err != nil || resp.Err != nil {
		log.Fatal(err, resp.Err)
	}
	fmt.Printf("appended version %d; delete %s to start over\n", store.Current().Version(), dir)
}

func exists(dir string) bool {
	entries, err := os.ReadDir(dir)
	return err == nil && len(entries) > 0
}
