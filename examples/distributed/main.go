// Distributed: the paper's Section 3 — an 8-site binary hypercube whose
// medium acts as one large merge. Clients at different sites query two
// databases; each database has a primary site; the root directory (site 0)
// resolves names to primaries via the RESULT-ON pragma; responses are
// routed back by origin tag.
package main

import (
	"fmt"
	"log"
	"sync"

	"funcdb"
)

func main() {
	cluster, err := funcdb.OpenCluster(funcdb.ClusterConfig{
		Sites:     8,
		Hypercube: 3,
		Databases: map[string]*funcdb.Database{
			"inventory": funcdb.MustOpen(funcdb.WithRelations("parts")).Current(),
			"payroll":   funcdb.MustOpen(funcdb.WithRelations("salaries")).Current(),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	invSite, _ := cluster.PrimaryOf("inventory")
	paySite, _ := cluster.PrimaryOf("payroll")
	fmt.Printf("primaries: inventory at site %d, payroll at site %d, root directory at site 0\n",
		invSite, paySite)

	// Clients live on arbitrary sites; their first query consults the root
	// directory, then goes straight to the primary.
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := cluster.NewClient(funcdb.SiteID(c*2+1), fmt.Sprintf("client%d", c))
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				k := funcdb.Int(int64(c*100 + i)).String()
				if resp := client.Exec("inventory", "insert ("+k+`, "part") into parts`); resp.Err != nil {
					log.Fatalf("client %d: %v", c, resp.Err)
				}
				if resp := client.Exec("payroll", "insert ("+k+", 50000) into salaries"); resp.Err != nil {
					log.Fatalf("client %d: %v", c, resp.Err)
				}
			}
		}(c)
	}
	wg.Wait()

	for _, db := range []string{"inventory", "payroll"} {
		cur, err := cluster.Current(db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d tuples after 4 concurrent clients\n", db, cur.TotalTuples())
	}
	msgs, hops := cluster.Network().Stats()
	fmt.Printf("medium: %d messages, %d total hops on the hypercube\n", msgs, hops)
	fmt.Println("every query passed through its primary (the merge); the engine pipelined the rest")
}
