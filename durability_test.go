package funcdb_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"funcdb"
	"funcdb/internal/archive"
)

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := funcdb.Open(funcdb.WithDurability(dir), funcdb.WithRelations("R", "S"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := store.Exec(fmt.Sprintf("insert (%d, \"v%d\") into R", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := store.Exec(`insert ("key", 9) into S`); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Exec("delete 7 from R"); err != nil {
		t.Fatal(err)
	}
	want := store.Current()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	again, err := funcdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if !again.Current().Equal(want) {
		t.Fatalf("recovered %d tuples, want %d", again.Current().TotalTuples(), want.TotalTuples())
	}
	if again.Current().Version() != want.Version() {
		t.Fatalf("recovered version %d, want %d", again.Current().Version(), want.Version())
	}
	// The stream continues where it left off.
	if _, err := again.Exec("insert 100 into R"); err != nil {
		t.Fatal(err)
	}
	if got, want := again.Current().Version(), want.Version()+1; got != want {
		t.Fatalf("continued at version %d, want %d", got, want)
	}
}

// TestBatchFlushesGroupCommitWindow: a full ExecBatch lands durably
// without sleeping out the group-commit window (an hour here) and without
// any explicit flush — the store hints the archive's adaptive window with
// the batch's write count, and the last append of the batch flushes.
func TestBatchFlushesGroupCommitWindow(t *testing.T) {
	dir := t.TempDir()
	store, err := funcdb.Open(
		funcdb.WithRelations("R"),
		funcdb.WithDurability(dir, funcdb.GroupCommit(time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	queries := make([]string, 0, 64)
	for i := 0; i < 60; i++ {
		queries = append(queries, fmt.Sprintf("insert (%d, \"v\") into R", i))
	}
	queries = append(queries, "count R", "find 3 in R", "scan R", "range 1 9 in R")
	if _, err := store.ExecBatch(queries); err != nil {
		t.Fatal(err)
	}

	// The durable appends ride the observer pipeline, so poll — but the
	// only thing that can flush them is the adaptive window (the timer
	// fires in an hour, and we never call Barrier/Flush/Close here).
	// archive.Recover reads the directory as a crashed process would,
	// without disturbing the live writer.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if db, err := archive.Recover(dir); err == nil && db.TotalTuples() == 60 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("full batch never became durable without the window timer")
}

func TestOpenDirRequiresArchive(t *testing.T) {
	if _, err := funcdb.OpenDir(t.TempDir()); err == nil {
		t.Fatal("OpenDir on empty dir succeeded")
	}
	if _, err := funcdb.Open(funcdb.WithDurability("")); err == nil {
		t.Fatal("empty durability dir accepted")
	}
}

func TestDurableTimeTravel(t *testing.T) {
	dir := t.TempDir()
	store, err := funcdb.Open(funcdb.WithDurability(dir, funcdb.SnapshotEvery(3)), funcdb.WithRelations("R"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if _, err := store.Exec(fmt.Sprintf("insert %d into R", i)); err != nil {
			t.Fatal(err)
		}
	}
	// On-disk time travel from the live store, no in-memory history.
	for _, seq := range []int64{0, 1, 5, 10} {
		db, err := store.VersionAt(seq)
		if err != nil {
			t.Fatalf("VersionAt(%d): %v", seq, err)
		}
		if int64(db.TotalTuples()) != seq {
			t.Fatalf("version %d has %d tuples", seq, db.TotalTuples())
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// And after reopening: the restart keeps the whole stream readable.
	again, err := funcdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	db, err := again.VersionAt(4)
	if err != nil {
		t.Fatal(err)
	}
	if db.TotalTuples() != 4 {
		t.Fatalf("version 4 has %d tuples", db.TotalTuples())
	}
	infos, err := again.ArchivedVersions()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 11 { // snapshot 0 + 10 writes
		t.Fatalf("archived %d versions: %+v", len(infos), infos)
	}
}

func TestDurableCustomAndSnapshotForce(t *testing.T) {
	dir := t.TempDir()
	store, err := funcdb.Open(funcdb.WithDurability(dir), funcdb.WithRelations("R"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Exec("insert (1, 5) into R"); err != nil {
		t.Fatal(err)
	}
	if err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	want := store.Current()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := funcdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if !again.Current().Equal(want) {
		t.Fatal("snapshot-forced state lost")
	}
}

// TestKillAndRecover interrupts a durable workload with SIGKILL and
// verifies the store reopens at exactly the last durable version: the
// recovered version number S implies tuples 1..S are present and nothing
// else — no partial writes, no lost durable writes, no invented state.
func TestKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashWorkloadHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "FDB_CRASH_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait until the workload has demonstrably written log records, then
	// let it run a little longer so the kill lands mid-stream.
	logPath := ""
	deadline := time.Now().Add(20 * time.Second)
	for logPath == "" {
		if time.Now().After(deadline) {
			t.Fatal("helper never started writing")
		}
		matches, _ := filepath.Glob(filepath.Join(dir, "log-*.fdba"))
		for _, m := range matches {
			if fi, err := os.Stat(m); err == nil && fi.Size() > 4096 {
				logPath = m
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()
	_ = out.Close()

	store, err := funcdb.OpenDir(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer store.Close()
	cur := store.Current()
	seq := cur.Version()
	if seq == 0 {
		t.Fatal("nothing recovered: kill landed before any durable write")
	}
	// The helper inserts (i, i*10) for i = 1, 2, 3, ... — one commit per
	// version. Recovery to version S must yield exactly tuples 1..S.
	if int64(cur.TotalTuples()) != seq {
		t.Fatalf("version %d has %d tuples", seq, cur.TotalTuples())
	}
	for i := int64(1); i <= seq; i++ {
		resp, err := store.Exec(fmt.Sprintf("find %d in R", i))
		if err != nil || !resp.Found {
			t.Fatalf("tuple %d lost (err %v)", i, err)
		}
		if got := resp.Tuple.Field(1).AsInt(); got != i*10 {
			t.Fatalf("tuple %d has payload %d", i, got)
		}
	}
	// The version stream survives too: fdbarchive-style listing sees S
	// committed writes behind the initial snapshot.
	infos, err := store.ArchivedVersions()
	if err != nil {
		t.Fatal(err)
	}
	var logged int64
	for _, v := range infos {
		if v.Kind == "insert" {
			logged++
		}
	}
	if logged != seq {
		t.Fatalf("archive lists %d inserts, store recovered %d", logged, seq)
	}
	t.Logf("recovered cleanly at version %d", seq)
}

// TestCrashWorkloadHelper is the subprocess body for TestKillAndRecover:
// it opens a durable store and inserts monotonically until killed. It
// skips unless dispatched by the parent.
func TestCrashWorkloadHelper(t *testing.T) {
	dir := os.Getenv("FDB_CRASH_DIR")
	if dir == "" {
		t.Skip("helper: run via TestKillAndRecover")
	}
	store, err := funcdb.Open(funcdb.WithDurability(dir), funcdb.WithRelations("R"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second) // bound the orphan if the parent dies
	for i := int64(1); time.Now().Before(deadline); i++ {
		fut, err := store.ExecAsync(fmt.Sprintf("insert (%d, %d) into R", i, i*10))
		if err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 {
			fut.Force() // keep the pipeline bounded without serializing it
		}
	}
}

// TestDurableVersionsSurviveCompaction drives the fdbarchive workflow
// end to end at the API level: write, close, compact, reopen.
func TestDurableVersionsSurviveCompaction(t *testing.T) {
	dir := t.TempDir()
	store, err := funcdb.Open(funcdb.WithDurability(dir, funcdb.SnapshotEvery(4)), funcdb.WithRelations("R"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if _, err := store.Exec(fmt.Sprintf("insert %d in R", i)); err == nil {
			// "in" is not the insert preposition; make sure bad queries
			// never reach the archive.
			t.Fatal("bad query accepted")
		}
		if _, err := store.Exec(fmt.Sprintf("insert %d into R", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	out := runFdbArchive(t, dir)
	if !strings.Contains(out, "version 10") {
		t.Fatalf("versions output missing tail:\n%s", out)
	}
	again, err := funcdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Current().TotalTuples() != 10 {
		t.Fatalf("recovered %d tuples", again.Current().TotalTuples())
	}
}

// runFdbArchive lists the archive's versions through the store-level API
// (the cmd/fdbarchive logic is tested in its own package).
func runFdbArchive(t *testing.T, dir string) string {
	t.Helper()
	store, err := funcdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	infos, err := store.ArchivedVersions()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, v := range infos {
		fmt.Fprintf(&b, "version %d: %s %s\n", v.Seq, v.Kind, v.Detail)
	}
	return b.String()
}

func TestHistoryRidesObserver(t *testing.T) {
	// The old Submit path forced every write inline; now history must fill
	// in asynchronously yet appear complete after Exec/Barrier.
	store := funcdb.MustOpen(funcdb.WithRelations("R"), funcdb.WithHistory(0))
	var futs []*funcdb.Future
	for i := 0; i < 30; i++ {
		fut, err := store.ExecAsync(fmt.Sprintf("insert %d into R", i))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	for _, f := range futs {
		if resp := f.Force(); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	h := store.History()
	if h.Len() != 31 { // initial + 30
		t.Fatalf("history has %d versions", h.Len())
	}
	for _, v := range h.All()[1:] {
		if int64(v.TotalTuples()) != v.Version() {
			t.Fatalf("version %d materialized with %d tuples (out of order)", v.Version(), v.TotalTuples())
		}
	}
}
