package client

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"funcdb"
	"funcdb/internal/reqtrace"
	"funcdb/internal/session"
	"funcdb/internal/wire"
)

// IsUnknownStmt reports whether an error (or wire error text) is the
// server refusing a stale statement id: the plan was evicted,
// invalidated by a schema change, or belongs to a previous server
// incarnation. The check is textual because server errors cross the wire
// as text (like the cluster's "cluster: fenced" sentinel); Stmt handles
// it transparently by re-preparing, so callers rarely see it.
func IsUnknownStmt(err error) bool {
	return err != nil && isUnknownStmtMsg(err.Error())
}

func isUnknownStmtMsg(msg string) bool {
	return strings.Contains(msg, "unknown prepared statement")
}

// Stmt is a prepared statement over the wire: the query text crosses
// once (FramePrepare, sent lazily on first use), the server plans it into
// its statement cache and answers with a dense id, and every execution
// ships id + positional args only — no text, no server-side parse.
//
// A Stmt survives the statement's eviction from the server cache: an
// execution answered with ErrUnknownStmt re-prepares and re-sends
// transparently (safe — a refused statement was never admitted). Safe
// for concurrent use.
type Stmt struct {
	c    *Client
	text string

	mu       sync.Mutex
	prepared bool
	id       uint64
	nparams  int
}

// Prepare returns a prepared-statement handle for q. No wire traffic
// happens yet: the statement auto-prepares on first use (or on an
// explicit NumParams call), so building handles is free.
func (c *Client) Prepare(q string) *Stmt {
	return &Stmt{c: c, text: q}
}

// Query returns the statement's source text.
func (s *Stmt) Query() string { return s.text }

// NumParams returns the number of '?' placeholders, preparing the
// statement on first call.
func (s *Stmt) NumParams() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.ensureLocked(); err != nil {
		return 0, err
	}
	return s.nparams, nil
}

// ensure returns the statement's current server-side id, preparing it
// over the wire if this handle has none.
func (s *Stmt) ensure() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ensureLocked()
}

func (s *Stmt) ensureLocked() (uint64, error) {
	if s.prepared {
		return s.id, nil
	}
	if s.c.version < 4 {
		return 0, fmt.Errorf("client: server speaks protocol %d; prepared statements need 4", s.c.version)
	}
	rid, err := s.c.send(wire.FramePrepare, func(dst []byte, id uint64) []byte {
		return wire.AppendPrepare(dst, id, s.text)
	})
	if err != nil {
		return 0, err
	}
	a, err := s.c.recv(rid)
	if err != nil {
		return 0, err
	}
	if a.isErr {
		return 0, errors.New(a.errMsg)
	}
	if !a.prepared {
		return 0, fmt.Errorf("client: request %d is not a prepare", rid)
	}
	s.id, s.nparams, s.prepared = a.stmtID, a.nparams, true
	return s.id, nil
}

// forget drops the handle's server-side id if it still is stale: the next
// execution re-prepares. Racing executions that already re-prepared are
// left alone.
func (s *Stmt) forget(stale uint64) {
	s.mu.Lock()
	if s.prepared && s.id == stale {
		s.prepared = false
	}
	s.mu.Unlock()
}

// validArgs rejects zero items before encoding: an invalid item must be
// the caller's error, never a torn frame.
func validArgs(args []funcdb.Item) error {
	for i, a := range args {
		if !a.IsValid() {
			return fmt.Errorf("client: bind parameter %d is the zero item", i+1)
		}
	}
	return nil
}

// StmtPending is one in-flight prepared execution. Unlike the plain
// Pending it retains the arguments, so Force can transparently re-prepare
// and re-send after an ErrUnknownStmt refusal.
type StmtPending struct {
	s      *Stmt
	id     uint64 // request id awaiting a reply
	stmtID uint64 // statement id the request was sent under
	args   []funcdb.Item
	t      *reqtrace.T // client-side trace (nil untraced)
	sentNS int64
}

// ExecAsync ships one prepared execution without waiting, auto-preparing
// on first use.
func (s *Stmt) ExecAsync(args ...funcdb.Item) (*StmtPending, error) {
	if err := validArgs(args); err != nil {
		return nil, err
	}
	stmtID, err := s.ensure()
	if err != nil {
		return nil, err
	}
	t, sentNS := s.c.startTrace()
	rid, err := s.sendExec(stmtID, args, t)
	if err != nil {
		return nil, err
	}
	return &StmtPending{s: s, id: rid, stmtID: stmtID, args: args, t: t, sentNS: sentNS}, nil
}

func (s *Stmt) sendExec(stmtID uint64, args []funcdb.Item, t *reqtrace.T) (uint64, error) {
	if tc, ok := traceSuffix(t, s.c.version); ok {
		return s.c.send(wire.FrameExecPrepared, func(dst []byte, id uint64) []byte {
			dst, _ = wire.AppendExecPreparedT(dst, id, stmtID, args, tc) // args pre-validated
			return dst
		})
	}
	return s.c.send(wire.FrameExecPrepared, func(dst []byte, id uint64) []byte {
		dst, _ = wire.AppendExecPrepared(dst, id, stmtID, args) // args pre-validated
		return dst
	})
}

// Force blocks until the response arrives. A stale-statement refusal is
// retried once after re-preparing — safe, because a refused statement was
// never admitted.
func (p *StmtPending) Force() (funcdb.Response, error) {
	a, err := p.s.c.recv(p.id)
	p.s.c.finishTrace(p.t, p.sentNS)
	if err != nil {
		return funcdb.Response{}, err
	}
	if a.isErr && isUnknownStmtMsg(a.errMsg) {
		p.s.forget(p.stmtID)
		stmtID, err := p.s.ensure()
		if err != nil {
			return funcdb.Response{}, err
		}
		rid, err := p.s.sendExec(stmtID, p.args, nil)
		if err != nil {
			return funcdb.Response{}, err
		}
		if a, err = p.s.c.recv(rid); err != nil {
			return funcdb.Response{}, err
		}
	}
	switch {
	case a.isErr:
		return funcdb.Response{}, errors.New(a.errMsg)
	case a.redirect != "":
		return funcdb.Response{}, fmt.Errorf("client: prepared request redirected to %s (use DialCluster to chase placements)", a.redirect)
	case a.batch:
		return funcdb.Response{}, errors.New("client: prepared request answered as a batch")
	}
	return a.resp, nil
}

// Exec ships one prepared execution and waits for the response.
func (s *Stmt) Exec(args ...funcdb.Item) (funcdb.Response, error) {
	p, err := s.ExecAsync(args...)
	if err != nil {
		return funcdb.Response{}, err
	}
	return p.Force()
}

// ExecBatch ships every argument set as ONE FrameBatchPrepared — one
// admission arbitration on the server, like ExecBatch — and waits for all
// responses. Binding is all-or-nothing on the server, so a stale
// statement id fails the whole frame before anything is admitted, and the
// batch re-prepares and retries exactly once.
func (s *Stmt) ExecBatch(argSets ...[]funcdb.Item) ([]funcdb.Response, error) {
	for i, args := range argSets {
		if err := validArgs(args); err != nil {
			return nil, &session.BatchError{Index: i, Query: s.text, Err: err}
		}
	}
	if len(argSets) == 0 {
		return nil, nil
	}
	calls := make([]wire.PreparedCall, len(argSets))
	t, sentNS := s.c.startTrace()
	for attempt := 0; ; attempt++ {
		stmtID, err := s.ensure()
		if err != nil {
			return nil, err
		}
		for i, args := range argSets {
			calls[i] = wire.PreparedCall{Stmt: stmtID, Args: args}
		}
		var rid uint64
		if tc, ok := traceSuffix(t, s.c.version); ok {
			rid, err = s.c.send(wire.FrameBatchPrepared, func(dst []byte, id uint64) []byte {
				dst, _ = wire.AppendBatchPreparedT(dst, id, calls, tc) // args pre-validated
				return dst
			})
		} else {
			rid, err = s.c.send(wire.FrameBatchPrepared, func(dst []byte, id uint64) []byte {
				dst, _ = wire.AppendBatchPrepared(dst, id, calls) // args pre-validated
				return dst
			})
		}
		if err != nil {
			return nil, err
		}
		a, err := s.c.recv(rid)
		if t != nil {
			// One client-send span for the whole operation (the rare
			// re-prepare retry extends nothing: the trace is finished).
			s.c.finishTrace(t, sentNS)
			t = nil
		}
		if err != nil {
			return nil, err
		}
		if a.isErr {
			if attempt == 0 && isUnknownStmtMsg(a.errMsg) {
				s.forget(stmtID)
				continue
			}
			if a.index >= 0 && a.index < len(argSets) {
				return nil, &session.BatchError{Index: a.index, Query: s.text, Err: errors.New(a.errMsg)}
			}
			return nil, errors.New(a.errMsg)
		}
		if !a.batch {
			return nil, fmt.Errorf("client: request %d is not a batch", rid)
		}
		return a.resps, nil
	}
}
