package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"funcdb"
	"funcdb/internal/core"
	"funcdb/internal/query"
	"funcdb/internal/reqtrace"
	"funcdb/internal/wire"
)

// ClusterStmt is a prepared statement against a cluster. The client
// parses the text ONCE locally (for the routing relation and the '?'
// count) and never again; executions ship the statement's text hash plus
// positional arguments as a ForwardPrepared frame to the owner, which
// resolves the hash in its statement cache — no text, no parse, on
// either side of the wire.
//
// Statement identity is negotiated per owner: the first execution against
// an address includes the text so the owner registers it; once an
// execution succeeds there, later frames to that address carry the hash
// alone. An owner that dropped the statement (cache eviction, schema
// invalidation, a restart) answers ErrUnknownStmt and the client
// transparently re-sends with the text. A failover does the same through
// the placement machinery: a fence or a dead connection forgets both the
// relation's placement and the address's statement registration, so the
// retried execution re-prepares at whichever node owns the relation now.
// Safe for concurrent use.
type ClusterStmt struct {
	c    *ClusterClient
	text string
	hash uint64

	mu        sync.Mutex
	parsed    bool
	rel       string
	kind      core.Kind
	nparams   int
	confirmed map[string]bool // addr -> owner is known to hold the statement
}

// Prepare returns a prepared-statement handle for q. Nothing crosses the
// wire yet — the text ships (once per owner) on first execution.
func (c *ClusterClient) Prepare(q string) *ClusterStmt {
	return &ClusterStmt{c: c, text: q, hash: query.HashText(q), confirmed: make(map[string]bool)}
}

// Query returns the statement's source text.
func (s *ClusterStmt) Query() string { return s.text }

// ensure parses the text client-side (once) for the routing relation and
// parameter count.
func (s *ClusterStmt) ensure() (rel string, nparams int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.parsed {
		prep, err := s.c.cache.Get(s.text)
		if err != nil {
			return "", 0, err
		}
		s.rel, s.kind, s.nparams, s.parsed = prep.Rel(), prep.Kind(), prep.NumParams(), true
	}
	return s.rel, s.nparams, nil
}

// NumParams returns the number of '?' placeholders (parsing locally on
// first call).
func (s *ClusterStmt) NumParams() (int, error) {
	_, n, err := s.ensure()
	return n, err
}

func (s *ClusterStmt) isConfirmed(addr string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.confirmed[addr]
}

func (s *ClusterStmt) confirm(addr string) {
	s.mu.Lock()
	s.confirmed[addr] = true
	s.mu.Unlock()
}

// forgetAddr drops the belief that addr holds the statement: the next
// frame there carries the text again.
func (s *ClusterStmt) forgetAddr(addr string) {
	s.mu.Lock()
	delete(s.confirmed, addr)
	s.mu.Unlock()
}

// Exec routes one prepared execution to the owning node and waits for
// the response.
func (s *ClusterStmt) Exec(args ...funcdb.Item) (funcdb.Response, error) {
	if err := validArgs(args); err != nil {
		return funcdb.Response{}, err
	}
	rel, nparams, err := s.ensure()
	if err != nil {
		return funcdb.Response{}, err
	}
	if len(args) != nparams {
		return funcdb.Response{}, fmt.Errorf("client: statement has %d parameters, got %d arguments", nparams, len(args))
	}
	seq := s.c.nextSeqs(1)
	// One-element run; HasText is decided per target address inside the
	// send loop.
	stmts := []wire.PreparedFwdStmt{{Origin: s.c.origin, Seq: seq, Hash: s.hash, Text: s.text, Args: args}}
	addr, _ := s.c.guess(rel)
	t, sentNS := s.c.startTrace()
	a, _, err := s.c.sendPreparedRun(s, rel, addr, wire.FwdNoForward, stmts, t)
	s.c.finishTrace(t, sentNS)
	if err != nil {
		return funcdb.Response{}, err
	}
	if a.isErr {
		return funcdb.Response{}, errors.New(a.errMsg)
	}
	if s.kind == core.KindCreate {
		s.c.cache.InvalidateRel(rel)
	}
	return a.resp, nil
}

// sendPreparedRun is sendRun for a prepared execution: the same failover
// discipline (fence and dead-connection retries against re-resolved
// placement under the retry budget), plus statement re-registration —
// rotating away from an address also forgets that the address held the
// statement, so the retry re-prepares wherever it lands.
func (c *ClusterClient) sendPreparedRun(s *ClusterStmt, rel, addr string, flags byte, stmts []wire.PreparedFwdStmt, t *reqtrace.T) (arrived, string, error) {
	a, served, err := c.sendPreparedOnce(s, rel, addr, flags, stmts, t)
	if c.retry <= 0 {
		return a, served, err
	}
	deadline := time.Now().Add(c.retry)
	for attempt := 1; ; attempt++ {
		fenced := err == nil && fencedReply(a)
		if err == nil && !fenced {
			return a, served, nil
		}
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed || time.Now().After(deadline) {
			return a, served, err
		}
		c.forget(rel)
		s.forgetAddr(addr)
		if served != "" {
			s.forgetAddr(served)
		}
		time.Sleep(failoverRetryPause)
		next := c.addrs[(core.LaneOf(rel, len(c.addrs))+attempt)%len(c.addrs)]
		addr = next
		a, served, err = c.sendPreparedOnce(s, rel, next, flags, stmts, t)
	}
}

// sendPreparedOnce is one delivery attempt: one redial per address, one
// redirect chase, and one re-send-with-text when a hash-only frame is
// refused as an unknown statement (the owner evicted or never had it —
// nothing was admitted, so re-sending is safe).
func (c *ClusterClient) sendPreparedOnce(s *ClusterStmt, rel, addr string, flags byte, stmts []wire.PreparedFwdStmt, t *reqtrace.T) (arrived, string, error) {
	redialed, redirected, reprepared := false, false, false
	for {
		dialNS := time.Now().UnixNano()
		cl, dialed, err := c.conn(addr)
		if err != nil {
			return arrived{}, "", err
		}
		if dialed && t != nil {
			t.SpanNS(reqtrace.StageClientDial, dialNS, time.Now().UnixNano()-dialNS)
		}
		hasText := !s.isConfirmed(addr)
		for i := range stmts {
			stmts[i].HasText = hasText
		}
		var id uint64
		if tc, ok := traceSuffix(t, cl.version); ok {
			id, err = cl.forwardPreparedTraced(flags, stmts, tc)
		} else {
			id, err = cl.forwardPrepared(flags, stmts)
		}
		if err != nil {
			if !redialed {
				c.dropConn(addr, cl)
				redialed = true
				continue
			}
			return arrived{}, "", err
		}
		a, err := cl.recv(id)
		if err != nil {
			return arrived{}, "", err
		}
		if a.isErr && isUnknownStmtMsg(a.errMsg) && !hasText && !reprepared {
			// The owner dropped the statement since we confirmed it:
			// re-send carrying the text so it re-registers.
			s.forgetAddr(addr)
			reprepared = true
			continue
		}
		if a.redirect == "" {
			if !a.isErr {
				c.learn(rel, addr)
				s.confirm(addr)
			}
			return a, addr, nil
		}
		if !c.noteEpoch(rel, a.rdEpoch) {
			return arrived{}, "", fmt.Errorf("client: stale redirect for %q to %s (epoch %d)", rel, a.redirect, a.rdEpoch)
		}
		if redirected {
			return arrived{}, "", fmt.Errorf("client: relation %q still not at %s after one redirect", rel, addr)
		}
		redirected, redialed, reprepared = true, false, false
		addr = a.redirect
	}
}

// forwardPrepared ships pre-tagged prepared executions as one
// FrameForwardPrepared and returns the request id.
func (c *Client) forwardPrepared(flags byte, stmts []wire.PreparedFwdStmt) (uint64, error) {
	return c.send(wire.FrameForwardPrepared, func(dst []byte, id uint64) []byte {
		dst, _ = wire.AppendForwardPrepared(dst, id, flags, 0, stmts) // args pre-validated
		return dst
	})
}

// forwardPreparedTraced is forwardPrepared with a trace-context suffix.
func (c *Client) forwardPreparedTraced(flags byte, stmts []wire.PreparedFwdStmt, tc wire.TraceCtx) (uint64, error) {
	return c.send(wire.FrameForwardPrepared, func(dst []byte, id uint64) []byte {
		dst, _ = wire.AppendForwardPreparedT(dst, id, flags|wire.FwdTrace, 0, tc, stmts) // args pre-validated
		return dst
	})
}
