// Package client is the dial-side of the funcdb wire protocol: a
// network session against a running fdbserver, with the same execution
// surface the in-process Store offers (Exec / ExecAsync / ExecBatch),
// so a workload can run unchanged in-process or over the wire.
//
// Requests are pipelined: ExecAsync writes the frame immediately and
// returns a Pending handle without waiting; any number of requests may
// be in flight, and responses are matched by request id, so forcing
// handles in any order is safe. ExecBatch ships the whole batch as ONE
// frame — the server admits it as one lane-split SubmitBatch, exactly
// like an in-process ExecBatch.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"sync"
	"sync/atomic"

	"funcdb"
	"funcdb/internal/reqtrace"
	"funcdb/internal/session"
	"funcdb/internal/wire"
)

// Client is one wire connection. Safe for concurrent use: sends are
// serialized under their own lock (so firing pipelined requests never
// waits behind a goroutine blocked reading a response), and concurrent
// Force calls cooperate through the receive buffer.
type Client struct {
	conn net.Conn

	wmu    sync.Mutex // guards bw, enc, and request-id allocation
	bw     *bufio.Writer
	enc    []byte // reused request encode buffer
	nextID uint64

	rmu sync.Mutex // guards rd and the reorder buffer
	rd  *wire.Reader
	// got buffers responses that arrived while awaiting another id:
	// out-of-order-safe pipelining.
	got map[uint64]arrived

	emu    sync.Mutex // guards the sticky transport failure
	err    error
	closed bool

	origin   string
	database string
	lanes    int
	durable  bool
	version  byte // server's protocol revision, from Welcome

	// Client-side tracing (WithTracing): the recorder holds this
	// connection's published traces; sampled requests stamp the v5
	// trace-context suffix so server-side spans share their trace id.
	traceCfg     *funcdb.TracingConfig
	rec          *reqtrace.Recorder
	dialNS       int64 // unix ns Dial began
	dialDurNS    int64 // dial + handshake duration
	dialAttached atomic.Bool
}

// fail records the first transport failure; every later call reports it.
func (c *Client) fail(err error) error {
	c.emu.Lock()
	defer c.emu.Unlock()
	if c.err == nil {
		c.err = err
	}
	return c.err
}

// sticky returns the recorded transport failure, if any.
func (c *Client) sticky() error {
	c.emu.Lock()
	defer c.emu.Unlock()
	return c.err
}

// arrived is one received reply, keyed by request id.
type arrived struct {
	resp     funcdb.Response   // FrameResponse
	resps    []funcdb.Response // FrameBatchResponse
	errMsg   string            // FrameError
	index    int               // FrameError: failing batch index, -1 otherwise
	isErr    bool
	batch    bool
	redirect string // FrameRedirect: the owning node's address
	rel      string // FrameRedirect: the relation being placed
	rdEpoch  uint64 // FrameRedirect: the owner's epoch (0 = unstamped)
	stats    []byte // FrameStatsResponse: the metrics JSON document
	traces   []byte // FrameTracesResponse: the traces JSON document
	stmtID   uint64 // FramePrepared: the dense statement id
	nparams  int    // FramePrepared: the statement's '?' count
	prepared bool   // FramePrepared arrived
}

// Option configures Dial.
type Option func(*Client)

// WithOrigin sets the origin tag the server stamps on this connection's
// transactions (default: server-assigned "connN").
func WithOrigin(origin string) Option {
	return func(c *Client) { c.origin = origin }
}

// WithDatabase selects the database this connection executes against on
// a multi-store listener (default: the server's default store, "main").
func WithDatabase(db string) Option {
	return func(c *Client) { c.database = db }
}

// WithTracing records client-side span timelines for this connection's
// requests (dial + handshake, request-sent → response-decoded) and —
// against a version-5 server — stamps sampled requests with the wire
// trace context, so the server's spans land under the same trace id and
// LocalTraces/Traces stitch into one end-to-end timeline.
func WithTracing(cfg funcdb.TracingConfig) Option {
	return func(c *Client) { c.traceCfg = &cfg }
}

// Dial connects and performs the protocol handshake.
func Dial(addr string, opts ...Option) (*Client, error) {
	dialStart := time.Now()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	c := &Client{
		conn: conn,
		rd:   wire.NewReader(bufio.NewReaderSize(conn, clientReadBufSize)),
		bw:   bufio.NewWriterSize(conn, clientWriteBufSize),
		got:  make(map[uint64]arrived),
	}
	for _, opt := range opts {
		opt(c)
	}
	if err := wire.WriteFrame(c.bw, wire.FrameHello, wire.AppendHello(nil, wire.Hello{Origin: c.origin, Database: c.database})); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: %w", err)
	}
	typ, payload, err := c.rd.Next()
	if err != nil || typ != wire.FrameWelcome {
		conn.Close()
		if err == nil && typ == wire.FrameError {
			// The server refused the handshake with a reason (e.g. an
			// unknown database name): surface it.
			if _, _, msg, derr := wire.DecodeErrorMsg(payload); derr == nil {
				return nil, fmt.Errorf("client: handshake refused: %s", msg)
			}
		}
		return nil, fmt.Errorf("client: handshake failed: %v", err)
	}
	w, err := wire.DecodeWelcome(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: %w", err)
	}
	c.origin, c.lanes, c.durable, c.database, c.version = w.Origin, w.Lanes, w.Durable, w.Database, w.Version
	if c.traceCfg != nil {
		c.rec = reqtrace.New("client:"+c.origin, *c.traceCfg)
		c.dialNS = dialStart.UnixNano()
		c.dialDurNS = time.Since(dialStart).Nanoseconds()
	}
	return c, nil
}

// startTrace opens a trace for one request when client tracing is on.
// The first sampled trace additionally carries the connection's dial +
// handshake span — dialing happens once, so it is attributed once.
// Returns the handle and the client-send span's start instant.
func (c *Client) startTrace() (*reqtrace.T, int64) {
	if c.rec == nil {
		return nil, 0
	}
	t := c.rec.Start()
	if t.Sampled() && !c.dialAttached.Swap(true) {
		t.SpanNS(reqtrace.StageClientDial, c.dialNS, c.dialDurNS)
	}
	return t, time.Now().UnixNano()
}

// finishTrace closes a request's client-send span and runs admission.
func (c *Client) finishTrace(t *reqtrace.T, sentNS int64) {
	if t == nil {
		return
	}
	t.SpanNS(reqtrace.StageClientSend, sentNS, time.Now().UnixNano()-sentNS)
	c.rec.Finish(t)
}

// traceSuffix decides whether a request frame carries the v5 trace
// suffix: only sampled traces, and only toward a version-5 server.
func traceSuffix(t *reqtrace.T, serverVer byte) (wire.TraceCtx, bool) {
	if t == nil || serverVer < 5 || !t.Sampled() {
		return wire.TraceCtx{}, false
	}
	ctx := t.Ctx()
	return wire.TraceCtx{ID: ctx.ID, Hop: ctx.Hop, Sampled: true}, true
}

// LocalTraces returns the traces published by this connection's own
// recorder (nil without WithTracing) — the client-side fragments; the
// server-side fragments come from Traces and stitch by id.
func (c *Client) LocalTraces() []funcdb.RequestTrace {
	return c.rec.Traces()
}

// Origin returns the connection's origin tag (server-assigned when Dial
// had none).
func (c *Client) Origin() string { return c.origin }

// Database returns the store name the connection is bound to.
func (c *Client) Database() string { return c.database }

// Lanes returns the server store's admission lane count.
func (c *Client) Lanes() int { return c.lanes }

// Durable reports whether the server store writes a durable archive.
func (c *Client) Durable() bool { return c.durable }

// Pending is one in-flight request: a response future over the wire.
type Pending struct {
	c      *Client
	id     uint64
	t      *reqtrace.T // client-side trace (nil untraced)
	sentNS int64
}

// Force blocks until the request's response arrives (reading the
// connection as needed) and returns it. Safe to call from any goroutine
// and in any order relative to other Pending handles.
func (p *Pending) Force() (funcdb.Response, error) {
	resp, err := p.c.await(p.id)
	p.c.finishTrace(p.t, p.sentNS)
	return resp, err
}

// send frames one request under the write lock and returns its request
// id. The payload is built by appending directly into the client's
// reused encode buffer (build receives it opened by BeginFrame), so the
// steady-state send path allocates nothing.
func (c *Client) send(typ byte, build func(dst []byte, id uint64) []byte) (uint64, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.sticky(); err != nil {
		return 0, err
	}
	id := c.nextID
	c.nextID++
	// Encode before touching the socket: an unencodable request (e.g. a
	// frame over the size limit) is the caller's error, not a transport
	// failure — EndFrame removes the bad frame and the connection stays
	// usable.
	var mark int
	var err error
	c.enc, mark = wire.BeginFrame(c.enc[:0], typ)
	c.enc = build(c.enc, id)
	if c.enc, err = wire.EndFrame(c.enc, mark); err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	if _, err := c.bw.Write(c.enc); err != nil {
		return 0, c.fail(fmt.Errorf("client: send: %w", err))
	}
	if cap(c.enc) > maxClientEncodeBuf {
		c.enc = nil // one giant batch must not pin its high-water mark
	}
	if err := c.bw.Flush(); err != nil {
		return 0, c.fail(fmt.Errorf("client: send: %w", err))
	}
	return id, nil
}

// await blocks until id's reply is buffered or read, consuming frames
// (and buffering other ids' replies) as they arrive.
func (c *Client) await(id uint64) (funcdb.Response, error) {
	a, err := c.recv(id)
	if err != nil {
		return funcdb.Response{}, err
	}
	if a.isErr {
		return funcdb.Response{}, errors.New(a.errMsg)
	}
	if a.redirect != "" {
		return funcdb.Response{}, fmt.Errorf("client: request %d redirected to %s (use DialCluster to chase placements)", id, a.redirect)
	}
	if a.batch {
		return funcdb.Response{}, fmt.Errorf("client: request %d is a batch (use ExecBatch)", id)
	}
	return a.resp, nil
}

// recv reads frames under the receive lock until id's reply arrives.
func (c *Client) recv(id uint64) (arrived, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for {
		if a, ok := c.got[id]; ok {
			delete(c.got, id)
			return a, nil
		}
		if err := c.sticky(); err != nil {
			return arrived{}, err
		}
		typ, payload, err := c.rd.Next()
		if err != nil {
			return arrived{}, c.fail(fmt.Errorf("client: recv: %w", err))
		}
		switch typ {
		case wire.FrameResponse:
			rid, resp, derr := wire.DecodeSingleResponse(payload)
			if derr != nil {
				return arrived{}, c.fail(derr)
			}
			c.got[rid] = arrived{resp: resp, index: -1}
		case wire.FrameBatchResponse:
			rid, resps, derr := wire.DecodeResponses(payload)
			if derr != nil {
				return arrived{}, c.fail(derr)
			}
			c.got[rid] = arrived{resps: resps, batch: true, index: -1}
		case wire.FrameError:
			rid, index, msg, derr := wire.DecodeErrorMsg(payload)
			if derr != nil {
				return arrived{}, c.fail(derr)
			}
			c.got[rid] = arrived{errMsg: msg, index: index, isErr: true}
		case wire.FrameRedirect:
			rid, addr, rel, epoch, derr := wire.DecodeRedirectE(payload)
			if derr != nil {
				return arrived{}, c.fail(derr)
			}
			c.got[rid] = arrived{redirect: addr, rel: rel, rdEpoch: epoch, index: -1}
		case wire.FramePrepared:
			rid, stmtID, nparams, derr := wire.DecodePrepared(payload)
			if derr != nil {
				return arrived{}, c.fail(derr)
			}
			c.got[rid] = arrived{stmtID: stmtID, nparams: nparams, prepared: true, index: -1}
		case wire.FrameStatsResponse:
			rid, doc, derr := wire.DecodeStatsResponse(payload)
			if derr != nil {
				return arrived{}, c.fail(derr)
			}
			// doc aliases the frame's read buffer: copy before it is reused.
			c.got[rid] = arrived{stats: append([]byte(nil), doc...), index: -1}
		case wire.FrameTracesResponse:
			rid, doc, derr := wire.DecodeTracesResponse(payload)
			if derr != nil {
				return arrived{}, c.fail(derr)
			}
			c.got[rid] = arrived{traces: append([]byte(nil), doc...), index: -1}
		default:
			return arrived{}, c.fail(fmt.Errorf("client: unexpected frame %#x", typ))
		}
	}
}

// forward ships pre-tagged statements as one FrameForward and returns
// the request id; the cluster client routes with it. The reply is a
// FrameResponse (one statement), FrameBatchResponse (several),
// FrameError, or — when this node does not own the statements' relation —
// a FrameRedirect carrying the owner's address.
func (c *Client) forward(flags byte, stmts []wire.ForwardStmt) (uint64, error) {
	return c.send(wire.FrameForward, func(dst []byte, id uint64) []byte {
		return wire.AppendForward(dst, id, flags, stmts)
	})
}

// forwardTraced is forward with a trace-context suffix: the receiving
// node's spans land under tc.ID. Client Forward frames never carry an
// epoch, so only FwdTrace rides in the flags.
func (c *Client) forwardTraced(flags byte, stmts []wire.ForwardStmt, tc wire.TraceCtx) (uint64, error) {
	return c.send(wire.FrameForward, func(dst []byte, id uint64) []byte {
		return wire.AppendForwardT(dst, id, flags|wire.FwdTrace, 0, tc, stmts)
	})
}

// ExecAsync submits one statement without waiting: pipelined execution.
func (c *Client) ExecAsync(q string) (*Pending, error) {
	t, sentNS := c.startTrace()
	var id uint64
	var err error
	if tc, ok := traceSuffix(t, c.version); ok {
		id, err = c.send(wire.FrameExec, func(dst []byte, id uint64) []byte {
			return wire.AppendExecT(dst, id, q, tc)
		})
	} else {
		id, err = c.send(wire.FrameExec, func(dst []byte, id uint64) []byte {
			return wire.AppendExec(dst, id, q)
		})
	}
	if err != nil {
		return nil, err
	}
	return &Pending{c: c, id: id, t: t, sentNS: sentNS}, nil
}

// Exec submits one statement and waits for its response. A translation
// failure on the server surfaces as the returned error; an
// operation-level failure (e.g. an unknown relation) arrives inside the
// response, exactly as in-process execution reports it.
func (c *Client) Exec(q string) (funcdb.Response, error) {
	p, err := c.ExecAsync(q)
	if err != nil {
		return funcdb.Response{}, err
	}
	return p.Force()
}

// ExecBatch ships the batch as one frame — one admission arbitration on
// the server — and waits for every response. Translation is
// all-or-nothing; a failure reports a *funcdb.BatchError with the failing
// statement's index, like the in-process ExecBatch.
func (c *Client) ExecBatch(queries []string) ([]funcdb.Response, error) {
	t, sentNS := c.startTrace()
	var id uint64
	var err error
	if tc, ok := traceSuffix(t, c.version); ok {
		id, err = c.send(wire.FrameBatch, func(dst []byte, id uint64) []byte {
			return wire.AppendBatchT(dst, id, queries, tc)
		})
	} else {
		id, err = c.send(wire.FrameBatch, func(dst []byte, id uint64) []byte {
			return wire.AppendBatch(dst, id, queries)
		})
	}
	if err != nil {
		return nil, err
	}
	a, aerr := c.recv(id)
	c.finishTrace(t, sentNS)
	if aerr != nil {
		return nil, aerr
	}
	if a.isErr {
		if a.index >= 0 && a.index < len(queries) {
			return nil, &session.BatchError{Index: a.index, Query: queries[a.index], Err: errors.New(a.errMsg)}
		}
		return nil, errors.New(a.errMsg)
	}
	if !a.batch {
		return nil, fmt.Errorf("client: request %d is not a batch", id)
	}
	return a.resps, nil
}

// Stats asks the server for its metrics snapshot: every layer's counters
// and latency histograms at this instant, as one document (see
// funcdb.MetricsSnapshot). On a cluster node the snapshot includes
// routing, per-peer link state, and replica progress. The request
// pipelines like any other frame.
func (c *Client) Stats() (funcdb.MetricsSnapshot, error) {
	var snap funcdb.MetricsSnapshot
	id, err := c.send(wire.FrameStats, func(dst []byte, id uint64) []byte {
		return wire.AppendStats(dst, id)
	})
	if err != nil {
		return snap, err
	}
	a, err := c.recv(id)
	if err != nil {
		return snap, err
	}
	if a.isErr {
		return snap, errors.New(a.errMsg)
	}
	if a.stats == nil {
		return snap, fmt.Errorf("client: request %d is not a stats request", id)
	}
	if err := json.Unmarshal(a.stats, &snap); err != nil {
		return snap, fmt.Errorf("client: bad stats document: %w", err)
	}
	return snap, nil
}

// Traces asks the server for its published request traces (newest
// first): the server-side fragments of sampled and slow requests, which
// Render/Stitch merge with client-side LocalTraces by trace id. Needs a
// version-5 server; the request pipelines like any other frame.
func (c *Client) Traces() ([]funcdb.RequestTrace, error) {
	if c.version < 5 {
		return nil, fmt.Errorf("client: server speaks protocol %d; traces need 5", c.version)
	}
	id, err := c.send(wire.FrameTraces, func(dst []byte, id uint64) []byte {
		return wire.AppendTraces(dst, id)
	})
	if err != nil {
		return nil, err
	}
	a, err := c.recv(id)
	if err != nil {
		return nil, err
	}
	if a.isErr {
		return nil, errors.New(a.errMsg)
	}
	if a.traces == nil {
		return nil, fmt.Errorf("client: request %d is not a traces request", id)
	}
	var out []funcdb.RequestTrace
	if err := json.Unmarshal(a.traces, &out); err != nil {
		return nil, fmt.Errorf("client: bad traces document: %w", err)
	}
	return out, nil
}

// Per-connection buffer sizing: explicit rather than bufio's 4 KiB
// default. Reads are sized for a burst of pipelined responses; writes
// stay small because requests are pre-assembled in the encode buffer.
const (
	clientReadBufSize  = 16 << 10
	clientWriteBufSize = 4 << 10
	// maxClientEncodeBuf caps the request buffer retained between sends.
	maxClientEncodeBuf = 256 << 10
)

// Close announces a clean quit and closes the connection. A goroutine
// blocked in Force wakes with a transport error.
func (c *Client) Close() error {
	c.emu.Lock()
	if c.closed {
		c.emu.Unlock()
		return nil
	}
	c.closed = true
	healthy := c.err == nil
	if c.err == nil {
		c.err = errors.New("client: closed")
	}
	c.emu.Unlock()

	if healthy {
		c.wmu.Lock()
		if err := wire.WriteFrame(c.bw, wire.FrameQuit, nil); err == nil {
			c.bw.Flush()
		}
		c.wmu.Unlock()
	}
	return c.conn.Close()
}
