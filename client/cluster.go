// Cluster-aware dialing: a client that talks to every node of a
// real-network cluster directly, computing placement locally and chasing
// at most one Redirect when its guess is stale — the Redis-cluster MOVED
// discipline over funcdb's wire protocol.
package client

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"funcdb"
	"funcdb/internal/core"
	"funcdb/internal/query"
	"funcdb/internal/reqtrace"
	"funcdb/internal/session"
	"funcdb/internal/wire"
)

// ClusterClient executes statements against a cluster, routing each one
// to the node that owns its relation. It owns the origin/sequence tag
// space (statements ship pre-tagged Forward frames), so a workload run
// through it produces the same tagged response stream as the same
// workload against one in-process store — the cluster equivalence the
// harness checks. Safe for concurrent use; statements issued
// concurrently are tagged in issue order.
type ClusterClient struct {
	origin string
	addrs  []string      // the addresses given to DialCluster, seed order
	retry  time.Duration // failover retry budget (0 = off)

	// Client-side tracing (WithClusterTracing): one recorder for the whole
	// cluster client; sampled requests stamp the trace context onto their
	// Forward frames so every node's spans share the trace id.
	traceCfg *funcdb.TracingConfig
	rec      *reqtrace.Recorder

	mu        sync.Mutex
	seq       int
	conns     map[string]*Client
	placement map[string]string // relation -> owning address, learned
	epochs    map[string]uint64 // relation -> newest owner epoch seen (monotone)
	cache     *query.StmtCache
	closed    bool
}

// ClusterOption configures DialCluster.
type ClusterOption func(*ClusterClient)

// WithClusterOrigin sets the tag stamped on the client's statements
// (default "cluster").
func WithClusterOrigin(origin string) ClusterOption {
	return func(c *ClusterClient) { c.origin = origin }
}

// WithFailoverRetry makes the client ride through a primary failover:
// when a statement dies with its connection, is refused by an epoch
// fence ("cluster: fenced"), or exhausts a redirect chase, the client
// forgets the relation's placement, rotates to another seed address,
// and retries until the budget elapses. Redirect epochs are tracked per
// relation so a stale node cannot steer the client backwards. Without
// this option the client keeps the static-placement discipline — one
// redial, one redirect chase, then the error surfaces.
func WithFailoverRetry(budget time.Duration) ClusterOption {
	return func(c *ClusterClient) { c.retry = budget }
}

// WithClusterTracing records client-side span timelines (lazy dials,
// request-sent → response-decoded) under one recorder and stamps sampled
// requests' Forward frames with the v5 trace context, so server-side
// spans across the whole cluster land under the same trace id.
func WithClusterTracing(cfg funcdb.TracingConfig) ClusterOption {
	return func(c *ClusterClient) { c.traceCfg = &cfg }
}

// DialCluster prepares a cluster client over the given node addresses.
// Connections are dialed lazily, per node, on first use.
//
// When addrs is the full membership in cluster order, the client's first
// placement guess — the lane hash over the list — is already the owner
// and no redirect ever fires. Any subset (even a single seed) also
// works: a misrouted statement comes back as a Redirect carrying the
// owner's address, the client re-sends there (at most once) and caches
// the placement for the relation.
func DialCluster(addrs []string, opts ...ClusterOption) (*ClusterClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: DialCluster needs at least one address")
	}
	c := &ClusterClient{
		origin:    "cluster",
		addrs:     append([]string(nil), addrs...),
		conns:     make(map[string]*Client),
		placement: make(map[string]string),
		epochs:    make(map[string]uint64),
		cache:     query.NewStmtCache(0),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.traceCfg != nil {
		c.rec = reqtrace.New("client:"+c.origin, *c.traceCfg)
	}
	return c, nil
}

// Origin returns the client's tag.
func (c *ClusterClient) Origin() string { return c.origin }

// startTrace opens a trace for one routed request when tracing is on,
// returning the handle and the client-send span's start instant.
func (c *ClusterClient) startTrace() (*reqtrace.T, int64) {
	if c.rec == nil {
		return nil, 0
	}
	return c.rec.Start(), time.Now().UnixNano()
}

// finishTrace closes a request's client-send span and runs admission.
func (c *ClusterClient) finishTrace(t *reqtrace.T, sentNS int64) {
	if t == nil {
		return
	}
	t.SpanNS(reqtrace.StageClientSend, sentNS, time.Now().UnixNano()-sentNS)
	c.rec.Finish(t)
}

// LocalTraces returns the traces published by the cluster client's own
// recorder (nil without WithClusterTracing): the client-side fragments,
// stitched with TracesAll's server fragments by id.
func (c *ClusterClient) LocalTraces() []funcdb.RequestTrace {
	return c.rec.Traces()
}

// conn returns (dialing if needed) the connection to addr.
func (c *ClusterClient) conn(addr string) (*Client, bool, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, errors.New("client: cluster client closed")
	}
	if cl, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		return cl, false, nil
	}
	c.mu.Unlock()
	// Dial outside the lock; a racing dial to the same addr keeps the
	// first registered connection.
	cl, err := Dial(addr, WithOrigin(c.origin))
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		cl.Close()
		return nil, false, errors.New("client: cluster client closed")
	}
	if have, ok := c.conns[addr]; ok {
		cl.Close()
		return have, false, nil
	}
	c.conns[addr] = cl
	return cl, true, nil
}

// dropConn forgets a connection whose transport failed, so the next
// statement redials.
func (c *ClusterClient) dropConn(addr string, cl *Client) {
	c.mu.Lock()
	if c.conns[addr] == cl {
		delete(c.conns, addr)
	}
	c.mu.Unlock()
	cl.Close()
}

// guess returns the address to try first for a relation — the learned
// placement if present, else the lane hash over the dialed list (exact
// when the list is the full membership in cluster order; a seed pick —
// corrected by one redirect — otherwise) — and whether the answer is
// learned-certain rather than a guess.
func (c *ClusterClient) guess(rel string) (addr string, known bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if addr, ok := c.placement[rel]; ok {
		return addr, true
	}
	return c.addrs[core.LaneOf(rel, len(c.addrs))], false
}

// learn records where a relation's statements were actually served.
func (c *ClusterClient) learn(rel, addr string) {
	c.mu.Lock()
	c.placement[rel] = addr
	c.mu.Unlock()
}

// forget drops a relation's learned placement (its epoch knowledge is
// kept — epochs are monotone and guard against stale redirects).
func (c *ClusterClient) forget(rel string) {
	c.mu.Lock()
	delete(c.placement, rel)
	c.mu.Unlock()
}

// noteEpoch folds a redirect's owner epoch into the client's knowledge,
// reporting false for a redirect OLDER than what the client has already
// seen — a stale node trying to steer it backwards.
func (c *ClusterClient) noteEpoch(rel string, epoch uint64) bool {
	if epoch == 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch < c.epochs[rel] {
		return false
	}
	c.epochs[rel] = epoch
	return true
}

// translate resolves a statement through the client-side cache: the
// relation (for routing) and read-only-ness, plus translation errors
// before anything is sent.
func (c *ClusterClient) translate(q string) (core.Transaction, error) {
	prep, err := c.cache.Get(q)
	if err != nil {
		return core.Transaction{}, err
	}
	return prep.Bind()
}

// nextSeqs reserves n consecutive sequence numbers, returning the first.
func (c *ClusterClient) nextSeqs(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	first := c.seq
	c.seq += n
	return first
}

// sendRun ships a run of same-owner statements to addr as one Forward
// frame and returns the replies plus the address that actually served
// them. Without a failover-retry budget this is one sendRunOnce; with
// one, failures that look like a promotion in flight — a dead
// connection, an exhausted redirect chase, a fencing rejection — are
// retried against re-resolved placement until the budget elapses.
func (c *ClusterClient) sendRun(rel, addr string, flags byte, stmts []wire.ForwardStmt, learn bool, t *reqtrace.T) (arrived, string, error) {
	a, served, err := c.sendRunOnce(rel, addr, flags, stmts, learn, t)
	if c.retry <= 0 {
		return a, served, err
	}
	deadline := time.Now().Add(c.retry)
	for attempt := 1; ; attempt++ {
		fenced := err == nil && fencedReply(a)
		if err == nil && !fenced {
			return a, served, nil
		}
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed || time.Now().After(deadline) {
			return a, served, err
		}
		// Forget what we knew about the relation and re-resolve through a
		// rotating seed: a node that is alive answers or redirects us to
		// the serving owner in its newest epoch.
		c.forget(rel)
		time.Sleep(failoverRetryPause)
		next := c.addrs[(core.LaneOf(rel, len(c.addrs))+attempt)%len(c.addrs)]
		a, served, err = c.sendRunOnce(rel, next, flags, stmts, learn, t)
	}
}

// failoverRetryPause paces placement re-resolution while a promotion is
// in flight.
const failoverRetryPause = 25 * time.Millisecond

// fencedReply reports whether a reply carries an epoch-fence rejection —
// either as a frame-level error or as per-statement errors on responses
// that were resolved fenced (a node closing before a write replicated).
// Fenced statements were never acked, so re-executing the run against
// the re-resolved owner is safe.
func fencedReply(a arrived) bool {
	if a.isErr {
		return strings.Contains(a.errMsg, "cluster: fenced")
	}
	if a.resp.Err != nil && strings.Contains(a.resp.Err.Error(), "cluster: fenced") {
		return true
	}
	for _, r := range a.resps {
		if r.Err != nil && strings.Contains(r.Err.Error(), "cluster: fenced") {
			return true
		}
	}
	return false
}

// sendRunOnce is one delivery attempt, carrying two separate one-shot
// budgets: one REDIAL per target address (a cached connection may have
// died with the peer's restart — placement is not in question, so a
// reconnect must not spend the redirect budget) and one REDIRECT chase
// (the placement correction). learn=false suppresses placement learning
// (replica reads are deliberately served off-owner).
func (c *ClusterClient) sendRunOnce(rel, addr string, flags byte, stmts []wire.ForwardStmt, learn bool, t *reqtrace.T) (arrived, string, error) {
	redialed, redirected := false, false
	for {
		dialNS := time.Now().UnixNano()
		cl, dialed, err := c.conn(addr)
		if err != nil {
			return arrived{}, "", err
		}
		if dialed && t != nil {
			// This request paid for the dial + handshake: attribute it.
			t.SpanNS(reqtrace.StageClientDial, dialNS, time.Now().UnixNano()-dialNS)
		}
		var id uint64
		if tc, ok := traceSuffix(t, cl.version); ok {
			id, err = cl.forwardTraced(flags, stmts, tc)
		} else {
			id, err = cl.forward(flags, stmts)
		}
		if err != nil {
			if !redialed {
				c.dropConn(addr, cl)
				redialed = true
				continue
			}
			return arrived{}, "", err
		}
		a, err := cl.recv(id)
		if err != nil {
			return arrived{}, "", err
		}
		if a.redirect == "" {
			if learn {
				c.learn(rel, addr)
			}
			return a, addr, nil
		}
		if !c.noteEpoch(rel, a.rdEpoch) {
			return arrived{}, "", fmt.Errorf("client: stale redirect for %q to %s (epoch %d)", rel, a.redirect, a.rdEpoch)
		}
		if redirected {
			return arrived{}, "", fmt.Errorf("client: relation %q still not at %s after one redirect", rel, addr)
		}
		redirected, redialed = true, false
		addr = a.redirect
	}
}

// Exec routes one statement to its owner and waits for the response.
func (c *ClusterClient) Exec(q string) (funcdb.Response, error) {
	return c.exec(q, wire.FwdNoForward)
}

// ExecReplica serves a read-only statement from the FIRST dialed node —
// from its local replica when it does not own the relation, from the
// primary store itself when it does — stamping Response.Version with the
// version the read observed. Compare it to the owner's current version
// for the read's staleness: a replica read lags by however many commits
// the log shipping hasn't applied yet, an owner-served read is exact.
// Writes are refused.
func (c *ClusterClient) ExecReplica(q string) (funcdb.Response, error) {
	tx, err := c.translate(q)
	if err != nil {
		return funcdb.Response{}, err
	}
	if !tx.IsReadOnly() {
		return funcdb.Response{}, fmt.Errorf("client: ExecReplica is read-only (%s writes)", tx.Kind)
	}
	seq := c.nextSeqs(1)
	stmt := wire.ForwardStmt{Origin: c.origin, Seq: seq, Query: q}
	t, sentNS := c.startTrace()
	// The near node serves the read itself (replica or primary); redirect
	// only fires when it has no replica of the relation (replication
	// disabled), in which case the owner answers.
	a, _, err := c.sendRun(tx.Rel, c.addrs[0], wire.FwdNoForward|wire.FwdReadLocal,
		[]wire.ForwardStmt{stmt}, false, t)
	c.finishTrace(t, sentNS)
	if err != nil {
		return funcdb.Response{}, err
	}
	if a.isErr {
		return funcdb.Response{}, errors.New(a.errMsg)
	}
	return a.resp, nil
}

func (c *ClusterClient) exec(q string, flags byte) (funcdb.Response, error) {
	tx, err := c.translate(q)
	if err != nil {
		return funcdb.Response{}, err
	}
	seq := c.nextSeqs(1)
	stmt := wire.ForwardStmt{Origin: c.origin, Seq: seq, Query: q}
	addr, _ := c.guess(tx.Rel)
	t, sentNS := c.startTrace()
	a, _, err := c.sendRun(tx.Rel, addr, flags, []wire.ForwardStmt{stmt}, true, t)
	c.finishTrace(t, sentNS)
	if err != nil {
		return funcdb.Response{}, err
	}
	if a.isErr {
		return funcdb.Response{}, errors.New(a.errMsg)
	}
	c.invalidateOnCreate(tx)
	return a.resp, nil
}

// ExecBatch translates the whole batch (all-or-nothing: a failure
// reports a *funcdb.BatchError with the failing statement's index and
// nothing is sent), tags every statement in order, splits it into
// consecutive same-owner runs, ships each run as one Forward frame, and
// reassembles the responses in statement order. Statements for one
// relation always travel in one connection's order, so per-relation
// effects and responses match a single-store run exactly.
func (c *ClusterClient) ExecBatch(queries []string) ([]funcdb.Response, error) {
	txs := make([]core.Transaction, len(queries))
	for i, q := range queries {
		tx, err := c.translate(q)
		if err != nil {
			return nil, &session.BatchError{Index: i, Query: q, Err: err}
		}
		txs[i] = tx
	}
	first := c.nextSeqs(len(queries))

	// One trace covers the whole batch: every run's Forward frame is
	// stamped with the same context, so all owners' spans stitch under
	// one id, and one client-send span brackets the full reassembly.
	t, sentNS := c.startTrace()
	defer func() { c.finishTrace(t, sentNS) }()

	out := make([]funcdb.Response, len(queries))
	for i := 0; i < len(queries); {
		rel := txs[i].Rel
		addr, known := c.guess(rel)
		// A Forward frame must be single-owner. Statements group together
		// when their placements are both LEARNED to the same node, or when
		// they name the same relation (same relation ⇒ same owner, so the
		// run redirects as a unit even while placement is still a guess).
		j := i + 1
		for j < len(queries) {
			a, k := c.guess(txs[j].Rel)
			if !(known && k && a == addr) && txs[j].Rel != rel {
				break
			}
			j++
		}
		stmts := make([]wire.ForwardStmt, j-i)
		for k := i; k < j; k++ {
			stmts[k-i] = wire.ForwardStmt{Origin: c.origin, Seq: first + k, Query: queries[k]}
		}
		a, _, err := c.sendRun(rel, addr, wire.FwdNoForward, stmts, true, t)
		if err != nil {
			return nil, err
		}
		if a.isErr {
			// The owner's translation failed mid-frame: its index is
			// relative to the run — map it back to the batch position, so
			// the BatchError a caller unwraps names the right statement
			// even though the frame was forwarded.
			if a.index >= 0 && i+a.index < len(queries) {
				return nil, &session.BatchError{
					Index: i + a.index,
					Query: queries[i+a.index],
					Err:   errors.New(a.errMsg),
				}
			}
			return nil, errors.New(a.errMsg)
		}
		if a.batch {
			copy(out[i:j], a.resps)
		} else if j-i == 1 {
			out[i] = a.resp
		} else {
			return nil, fmt.Errorf("client: short reply for a %d-statement run", j-i)
		}
		for k := i; k < j; k++ {
			c.invalidateOnCreate(txs[k])
		}
		i = j
	}
	return out, nil
}

// Stats returns one node's metrics snapshot (dialing it if needed).
func (c *ClusterClient) Stats(addr string) (funcdb.MetricsSnapshot, error) {
	cl, _, err := c.conn(addr)
	if err != nil {
		return funcdb.MetricsSnapshot{}, err
	}
	return cl.Stats()
}

// StatsAll snapshots every dialed-list node, keyed by address. Each
// node's Peers rows carry its replica progress against the others, so the
// map is enough to compute cluster-wide replication lag: node i's Version
// minus node j's ReplicaApplied for peer i. Nodes that cannot be reached
// are reported in errs and omitted from the map.
func (c *ClusterClient) StatsAll() (snaps map[string]funcdb.MetricsSnapshot, errs map[string]error) {
	snaps = make(map[string]funcdb.MetricsSnapshot, len(c.addrs))
	errs = make(map[string]error)
	for _, addr := range c.addrs {
		snap, err := c.Stats(addr)
		if err != nil {
			errs[addr] = err
			continue
		}
		snaps[addr] = snap
	}
	return snaps, errs
}

// Traces returns one node's published request traces (dialing it if
// needed). Needs version-5 nodes.
func (c *ClusterClient) Traces(addr string) ([]funcdb.RequestTrace, error) {
	cl, _, err := c.conn(addr)
	if err != nil {
		return nil, err
	}
	return cl.Traces()
}

// TracesAll gathers every dialed-list node's published traces into one
// list. The fragments of one distributed request share a trace id, so
// reqtrace.Stitch/Render over the merged list draws the full hop tree —
// gateway, owning primary, and mirror apply. Unreachable nodes are
// reported in errs and contribute nothing.
func (c *ClusterClient) TracesAll() (traces []funcdb.RequestTrace, errs map[string]error) {
	errs = make(map[string]error)
	for _, addr := range c.addrs {
		ts, err := c.Traces(addr)
		if err != nil {
			errs[addr] = err
			continue
		}
		traces = append(traces, ts...)
	}
	return traces, errs
}

// invalidateOnCreate drops cached statements touching a relation the
// batch just created, mirroring the session discipline.
func (c *ClusterClient) invalidateOnCreate(tx core.Transaction) {
	if tx.Kind == core.KindCreate {
		c.cache.InvalidateRel(tx.Rel)
	}
}

// Close closes every node connection.
func (c *ClusterClient) Close() error {
	c.mu.Lock()
	c.closed = true
	conns := make([]*Client, 0, len(c.conns))
	for _, cl := range c.conns {
		conns = append(conns, cl)
	}
	c.conns = map[string]*Client{}
	c.mu.Unlock()
	var err error
	for _, cl := range conns {
		if cerr := cl.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
