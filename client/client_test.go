package client_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"funcdb"
	"funcdb/client"
	"funcdb/internal/server"
)

func TestDialErrors(t *testing.T) {
	// Nothing listening: Dial reports, no panic.
	if _, err := client.Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to dead port succeeded")
	}
}

func TestClientAfterClose(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	defer store.Close()
	srv := server.New(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Shutdown()

	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := c.Exec("count R"); err != nil || resp.Err != nil {
		t.Fatalf("count: %v / %v", err, resp.Err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("count R"); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("exec after close: %v", err)
	}
	if err := c.Close(); err != nil { // double close is a no-op
		t.Errorf("second close: %v", err)
	}
}

// TestConcurrentCallersShareOneConnection: many goroutines exec through
// one client; request ids route every response to its caller. Runs under
// -race in CI.
func TestConcurrentCallersShareOneConnection(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	defer store.Close()
	srv := server.New(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Shutdown()

	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const goroutines, ops = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := g*ops + i
				resp, err := c.Exec(fmt.Sprintf("insert (%d, \"v\") into R", k))
				if err != nil || resp.Err != nil {
					t.Errorf("insert %d: %v / %v", k, err, resp.Err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	resp, err := c.Exec("count R")
	if err != nil || resp.Count != goroutines*ops {
		t.Fatalf("count = %+v (%v), want %d", resp, err, goroutines*ops)
	}
}

// TestStatsOverWire: a client's Stats round-trips the server's metrics
// snapshot — the engine counters reflect the work this connection
// submitted, and the server section counts the connection and its execs.
func TestStatsOverWire(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	defer store.Close()
	srv := server.New(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Shutdown()

	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const writes = 10
	for i := 0; i < writes; i++ {
		if resp, err := c.Exec(fmt.Sprintf("insert (%d, \"v\") into R", i)); err != nil || resp.Err != nil {
			t.Fatalf("insert %d: %v / %v", i, err, resp.Err)
		}
	}
	if _, err := c.Exec("count R"); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != writes {
		t.Errorf("snapshot version = %d, want %d", snap.Version, writes)
	}
	if snap.Engine.Admitted != writes {
		t.Errorf("admitted = %d, want %d", snap.Engine.Admitted, writes)
	}
	if snap.Engine.CommitLatency.Count != writes {
		t.Errorf("commit latency count = %d, want %d", snap.Engine.CommitLatency.Count, writes)
	}
	if snap.Server == nil {
		t.Fatal("no server section in wire snapshot")
	}
	if snap.Server.Conns != 1 || snap.Server.Execs != writes+1 {
		t.Errorf("server section conns=%d execs=%d, want 1/%d",
			snap.Server.Conns, snap.Server.Execs, writes+1)
	}
	if snap.Server.LatencyExec.Count != writes+1 {
		t.Errorf("exec latency count = %d, want %d", snap.Server.LatencyExec.Count, writes+1)
	}
	if snap.Durable {
		t.Error("in-memory store reported durable")
	}
	if snap.Archive != nil {
		t.Error("archive section present without durability")
	}
}

func TestServerAssignedOrigin(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	defer store.Close()
	srv := server.New(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Shutdown()

	c, err := client.Dial(srv.Addr().String()) // no origin: server assigns
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !strings.HasPrefix(c.Origin(), "conn") {
		t.Errorf("assigned origin = %q", c.Origin())
	}
	resp, err := c.Exec("count R")
	if err != nil || resp.Origin != c.Origin() {
		t.Errorf("response origin %q, client origin %q (%v)", resp.Origin, c.Origin(), err)
	}
}
