package client_test

import (
	"fmt"
	"testing"

	"funcdb"
	"funcdb/client"
	"funcdb/internal/server"
)

// benchDial boots a loopback server over a seeded store and dials it.
func benchDial(b *testing.B) *client.Client {
	b.Helper()
	store := funcdb.MustOpen(funcdb.WithRelations("R"), funcdb.WithRepresentation(funcdb.RepAVL))
	for i := 0; i < 256; i++ {
		if _, err := store.Exec(fmt.Sprintf("insert (%d, \"v\") into R", i)); err != nil {
			b.Fatal(err)
		}
	}
	srv := server.New(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	b.Cleanup(func() {
		srv.Shutdown()
		store.Close()
	})
	c, err := client.Dial(srv.Addr().String(), client.WithOrigin("bench"))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkClientExec measures the client's full request/receive path —
// encode into the reused buffer, socket round trip, pooled decode —
// with allocations reported, so a regression on either side of the wire
// shows up as allocs/op here.
func BenchmarkClientExec(b *testing.B) {
	c := benchDial(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Exec(fmt.Sprintf("find %d in R", i%256))
		if err != nil || resp.Err != nil {
			b.Fatalf("%v / %v", err, resp.Err)
		}
	}
}

// BenchmarkClientExecBatch ships 64-statement batch frames, the
// amortized hot path fdbload exercises.
func BenchmarkClientExecBatch(b *testing.B) {
	c := benchDial(b)
	const batch = 64
	queries := make([]string, batch)
	for i := range queries {
		queries[i] = fmt.Sprintf("find %d in R", i%256)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		resps, err := c.ExecBatch(queries)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range resps {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
