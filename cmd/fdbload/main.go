// Command fdbload drives a funcdb cluster with an open-loop, Zipf-skewed,
// mixed read/write workload and reports client-observed latency as a
// histogram: the measurement harness for the observability layer.
//
// Open loop means arrivals are scheduled, not paced by responses: each
// connection issues its next statement at a fixed interval derived from
// --rate, and a statement's latency is measured from its SCHEDULED time.
// A server that falls behind therefore shows the queueing delay clients
// actually suffer (coordinated omission is the classic way load drivers
// lie about tail latency; scheduling avoids it). --rate 0 switches to a
// closed loop: each connection fires as fast as responses return.
//
// Keys are drawn from a Zipf distribution over --keys, so a few hot keys
// absorb most of the traffic — the access pattern that makes structure
// sharing (and lane contention) interesting. Each key's relation is
// key%len(relations), so the load spreads across every node's primaries.
//
// Point it at a running cluster with --addrs, or let it spawn its own:
// --spawn n boots an n-node loopback cluster (archives in a temp
// directory, group commit 2ms) for a self-contained benchmark run.
//
// The report prints to stdout; --out also writes it as JSON (the
// repository's BENCH_0006.json is such a file). --engine-overhead
// appends an in-process microbenchmark comparing the instrumented
// admission hot path against the uninstrumented one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"funcdb"
	"funcdb/client"
	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/metrics"
	"funcdb/internal/relation"
	"funcdb/internal/value"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fdbload:", err)
		os.Exit(1)
	}
}

// loadConfig is the resolved flag set, echoed into the JSON report so a
// checked-in result names the run that produced it.
type loadConfig struct {
	Addrs     []string      `json:"addrs,omitempty"`
	Spawn     int           `json:"spawn,omitempty"`
	Duration  time.Duration `json:"-"`
	DurationS float64       `json:"duration_s"`
	Conns     int           `json:"conns"`
	Rate      int           `json:"rate_ops_s"`
	ReadPct   int           `json:"read_pct"`
	Keys      int           `json:"keys"`
	ZipfS     float64       `json:"zipf_s"`
	Relations []string      `json:"relations"`
	Seed      int64         `json:"seed"`
}

// latencyDoc is one histogram rendered for the report, in microseconds.
type latencyDoc struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Mean  float64 `json:"mean"`
}

// nodeDoc is one cluster node's state at the end of the run.
type nodeDoc struct {
	Addr     string `json:"addr"`
	Version  int64  `json:"version"`
	Admitted int64  `json:"admitted"`
	Reads    int64  `json:"reads"`
	Forwards int64  `json:"forwards"`
}

// overheadDoc is the lane-commit microbenchmark result.
type overheadDoc struct {
	UninstrumentedNS float64 `json:"uninstrumented_ns_per_op"`
	InstrumentedNS   float64 `json:"instrumented_ns_per_op"`
	OverheadPct      float64 `json:"overhead_pct"`
}

// report is the JSON document --out writes.
type report struct {
	Bench             string       `json:"bench"`
	Config            loadConfig   `json:"config"`
	ElapsedS          float64      `json:"elapsed_s"`
	Ops               int64        `json:"ops"`
	Reads             int64        `json:"reads"`
	Writes            int64        `json:"writes"`
	Errors            int64        `json:"errors"`
	ThroughputOpsS    float64      `json:"throughput_ops_s"`
	Latency           latencyDoc   `json:"latency_us"`
	ReadLatency       latencyDoc   `json:"read_latency_us"`
	WriteLatency      latencyDoc   `json:"write_latency_us"`
	Nodes             []nodeDoc    `json:"nodes,omitempty"`
	ReplicationLagMax int64        `json:"replication_lag_max"`
	EngineOverhead    *overheadDoc `json:"engine_overhead,omitempty"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fdbload", flag.ContinueOnError)
	addrsFlag := fs.String("addrs", "", "comma-separated cluster node addresses to drive")
	spawn := fs.Int("spawn", 0, "spawn an in-process n-node loopback cluster instead of dialing --addrs")
	duration := fs.Duration("duration", 5*time.Second, "how long to drive load")
	conns := fs.Int("conns", 8, "concurrent client connections")
	rate := fs.Int("rate", 2000, "target ops/s across all connections (0 = closed loop)")
	readPct := fs.Int("read-pct", 50, "percentage of statements that are reads")
	keys := fs.Int("keys", 10000, "key-space size")
	zipfS := fs.Float64("zipf-s", 1.1, "Zipf skew (>1; larger = hotter head)")
	relations := fs.String("relations", "R,S,T", "comma-separated relations to spread keys over")
	seed := fs.Int64("seed", 1, "workload seed")
	out := fs.String("out", "", "also write the report as JSON to this path")
	overhead := fs.Bool("engine-overhead", false, "append the lane-commit instrumentation microbenchmark")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := loadConfig{
		Spawn: *spawn, Duration: *duration, DurationS: duration.Seconds(),
		Conns: *conns, Rate: *rate, ReadPct: *readPct, Keys: *keys,
		ZipfS: *zipfS, Seed: *seed,
	}
	for _, r := range strings.Split(*relations, ",") {
		if r != "" {
			cfg.Relations = append(cfg.Relations, r)
		}
	}
	if len(cfg.Relations) == 0 || cfg.Conns <= 0 || cfg.Keys <= 0 {
		return fmt.Errorf("need at least one relation, one connection and one key")
	}
	if cfg.ZipfS <= 1 {
		return fmt.Errorf("--zipf-s must be > 1 (got %g)", cfg.ZipfS)
	}

	if *spawn > 0 {
		addrs, shutdown, err := spawnCluster(*spawn, cfg.Relations)
		if err != nil {
			return err
		}
		defer shutdown()
		cfg.Addrs = addrs
		fmt.Fprintf(stdout, "spawned %d-node loopback cluster: %s\n", *spawn, strings.Join(addrs, " "))
	} else {
		cfg.Addrs = splitComma(*addrsFlag)
		if len(cfg.Addrs) == 0 {
			return fmt.Errorf("give --addrs or --spawn")
		}
	}

	rep, err := drive(cfg, stdout)
	if err != nil {
		return err
	}
	if *overhead {
		od := engineOverhead()
		rep.EngineOverhead = &od
		fmt.Fprintf(stdout, "engine overhead: %.0f ns/op uninstrumented, %.0f ns/op instrumented (%+.1f%%)\n",
			od.UninstrumentedNS, od.InstrumentedNS, od.OverheadPct)
	}
	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	}
	return nil
}

// drive runs the workload and assembles the report.
func drive(cfg loadConfig, stdout io.Writer) (*report, error) {
	var (
		lat, readLat, writeLat metrics.Histogram
		reads, writes, errs    metrics.Counter
	)
	// Per-connection arrival interval: the total target rate split evenly.
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) * float64(cfg.Conns) / float64(cfg.Rate))
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	dialErrs := make(chan error, cfg.Conns)
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.DialCluster(cfg.Addrs,
				client.WithClusterOrigin(fmt.Sprintf("load%d", w)))
			if err != nil {
				dialErrs <- err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
			// Stagger the connections so arrivals interleave instead of
			// bursting in lockstep.
			next := start.Add(interval * time.Duration(w) / time.Duration(cfg.Conns))
			for {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
				} else {
					next = time.Now()
				}
				if next.After(deadline) {
					return
				}
				key := int(zipf.Uint64())
				rel := cfg.Relations[key%len(cfg.Relations)]
				var q string
				isRead := rng.Intn(100) < cfg.ReadPct
				if isRead {
					q = fmt.Sprintf("find %d in %s", key, rel)
				} else {
					q = fmt.Sprintf("insert (%d, \"w%d\") into %s", key, w, rel)
				}
				resp, err := cl.Exec(q)
				// Latency from the SCHEDULED arrival: queueing counts.
				d := time.Since(next)
				if err != nil || resp.Err != nil {
					errs.Inc()
				} else {
					lat.Observe(d.Nanoseconds())
					if isRead {
						reads.Inc()
						readLat.Observe(d.Nanoseconds())
					} else {
						writes.Inc()
						writeLat.Observe(d.Nanoseconds())
					}
				}
				if interval > 0 {
					next = next.Add(interval)
				}
			}
		}(w)
	}
	wg.Wait()
	close(dialErrs)
	if err := <-dialErrs; err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	rep := &report{
		Bench: "fdbload", Config: cfg, ElapsedS: elapsed.Seconds(),
		Reads: reads.Load(), Writes: writes.Load(), Errors: errs.Load(),
	}
	rep.Ops = rep.Reads + rep.Writes
	rep.ThroughputOpsS = float64(rep.Ops) / elapsed.Seconds()
	rep.Latency = toLatencyDoc(lat.Snapshot())
	rep.ReadLatency = toLatencyDoc(readLat.Snapshot())
	rep.WriteLatency = toLatencyDoc(writeLat.Snapshot())

	// One stats sweep across the cluster: per-node state and the worst
	// replication lag (node i's version minus any peer's applied mirror
	// of i). Failures here degrade the report, not the run.
	statsCl, err := client.DialCluster(cfg.Addrs, client.WithClusterOrigin("load-stats"))
	if err == nil {
		snaps, _ := statsCl.StatsAll()
		versions := map[int]int64{}
		for i, addr := range cfg.Addrs {
			snap, ok := snaps[addr]
			if !ok {
				continue
			}
			versions[i] = snap.Version
			nd := nodeDoc{
				Addr: addr, Version: snap.Version,
				Admitted: snap.Engine.Admitted, Reads: snap.Engine.Reads,
			}
			if snap.Server != nil {
				nd.Forwards = snap.Server.Forwards
			}
			rep.Nodes = append(rep.Nodes, nd)
		}
		for _, snap := range snaps {
			for _, peer := range snap.Peers {
				if v, ok := versions[peer.Peer]; ok && peer.ReplicaApplied >= 0 {
					if lag := v - peer.ReplicaApplied; lag > rep.ReplicationLagMax {
						rep.ReplicationLagMax = lag
					}
				}
			}
		}
		statsCl.Close()
	}

	fmt.Fprintf(stdout, "%d ops in %v (%.0f ops/s): %d reads, %d writes, %d errors\n",
		rep.Ops, elapsed.Round(time.Millisecond), rep.ThroughputOpsS,
		rep.Reads, rep.Writes, rep.Errors)
	fmt.Fprintf(stdout, "latency: p50 %.0fµs  p90 %.0fµs  p99 %.0fµs  p99.9 %.0fµs  mean %.0fµs\n",
		rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.P999, rep.Latency.Mean)
	printHistogram(stdout, lat.Snapshot())
	if rep.ReplicationLagMax > 0 || len(rep.Nodes) > 1 {
		fmt.Fprintf(stdout, "replication lag (max): %d commits\n", rep.ReplicationLagMax)
	}
	return rep, nil
}

// toLatencyDoc converts a nanosecond histogram into microsecond quantiles.
func toLatencyDoc(h metrics.HistogramSnapshot) latencyDoc {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	return latencyDoc{
		Count: h.Count,
		P50:   us(h.Quantile(0.50)),
		P90:   us(h.Quantile(0.90)),
		P99:   us(h.P99),
		P999:  us(h.P999),
		Mean:  us(int64(h.Mean())),
	}
}

// printHistogram renders the power-of-two latency buckets as a bar chart.
func printHistogram(w io.Writer, h metrics.HistogramSnapshot) {
	if h.Count == 0 {
		return
	}
	var max int64
	for _, n := range h.Buckets {
		if n > max {
			max = n
		}
	}
	for b, n := range h.Buckets {
		if n == 0 {
			continue
		}
		lo := time.Duration(0)
		if b > 0 {
			lo = time.Duration(int64(1) << uint(b-1))
		}
		bar := strings.Repeat("#", int(40*n/max))
		fmt.Fprintf(w, "  %10v %8d %s\n", lo, n, bar)
	}
}

// spawnCluster boots n cluster nodes on loopback: every port bound first,
// the address list shared, then the nodes opened over the bound
// listeners. Archives live in a temp directory the shutdown removes.
func spawnCluster(n int, rels []string) (addrs []string, shutdown func(), err error) {
	dir, err := os.MkdirTemp("", "fdbload")
	if err != nil {
		return nil, nil, err
	}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			os.RemoveAll(dir)
			return nil, nil, err
		}
		lns[i] = ln
		addrs = append(addrs, ln.Addr().String())
	}
	nodes := make([]*funcdb.ClusterNode, 0, n)
	stop := func() {
		for _, node := range nodes {
			node.Shutdown()
		}
		os.RemoveAll(dir)
	}
	for i := 0; i < n; i++ {
		node, err := funcdb.OpenClusterNode(funcdb.ClusterNodeConfig{
			ID: i, Nodes: addrs, Listener: lns[i],
			Dir:       filepath.Join(dir, fmt.Sprintf("n%d", i)),
			Relations: rels,
			Durability: []funcdb.DurabilityOption{
				funcdb.GroupCommit(2 * time.Millisecond),
			},
		})
		if err != nil {
			for _, l := range lns[i:] {
				l.Close()
			}
			stop()
			return nil, nil, err
		}
		nodes = append(nodes, node)
		go node.Serve()
	}
	return addrs, stop, nil
}

// engineOverhead times the single-lane admission hot path with and
// without metrics, interleaved min-of-three so machine noise hits both
// sides: the observability layer's cost on the paper's core loop.
func engineOverhead() overheadDoc {
	const ops = 30000
	measure := func(opts ...core.EngineOption) float64 {
		e := core.NewEngine(database.New(relation.RepAVL, "R"), opts...)
		start := time.Now()
		for i := 0; i < ops; i++ {
			tx := core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v")))
			tx.Origin, tx.Seq = "bench", i
			e.Submit(tx)
		}
		e.Barrier()
		return float64(time.Since(start).Nanoseconds()) / ops
	}
	plain, inst := math.MaxFloat64, math.MaxFloat64
	for round := 0; round < 3; round++ {
		if v := measure(); v < plain {
			plain = v
		}
		var m metrics.Engine
		if v := measure(core.WithEngineMetrics(&m)); v < inst {
			inst = v
		}
	}
	return overheadDoc{
		UninstrumentedNS: plain,
		InstrumentedNS:   inst,
		OverheadPct:      100 * (inst - plain) / plain,
	}
}

// splitComma splits a comma-separated list, dropping empties.
func splitComma(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}
