// Command fdbload drives a funcdb cluster with an open-loop, Zipf-skewed,
// mixed read/write workload and reports client-observed latency as a
// histogram: the measurement harness for the observability layer.
//
// Open loop means arrivals are scheduled, not paced by responses: the
// driver keeps ONE arrival timeline at --rate and every connection
// atomically claims the next unclaimed slot, so the offered load stays
// exact from tens to thousands of connections; a statement's latency is
// measured from its SCHEDULED time.
// A server that falls behind therefore shows the queueing delay clients
// actually suffer (coordinated omission is the classic way load drivers
// lie about tail latency; scheduling avoids it). --rate 0 switches to a
// closed loop: each connection fires as fast as responses return.
//
// Keys are drawn from a Zipf distribution over --keys, so a few hot keys
// absorb most of the traffic — the access pattern that makes structure
// sharing (and lane contention) interesting. Each key's relation is
// key%len(relations), so the load spreads across every node's primaries.
//
// Point it at a running cluster with --addrs, or let it spawn its own:
// --spawn n boots an n-node loopback cluster (archives in a temp
// directory, group commit 2ms) for a self-contained benchmark run.
//
// The report prints to stdout; --out also writes it as JSON (the
// repository's BENCH_0006.json is such a file). --engine-overhead
// appends an in-process microbenchmark comparing the instrumented
// admission hot path against the uninstrumented one.
//
// --trace samples request traces on the driver's cluster clients (one
// connection in --trace-sample is traced with every request sampled —
// connection-level sampling holds the ~1/n fraction even when thousands
// of connections each issue only a handful of requests — and each
// sampled request carries a trace context across the wire, so
// every node's spans stitch under one id), prints exemplar trace ids
// next to the latency histogram buckets plus the slowest stitched
// timelines, and adds a trace section to the report. --trace-check
// additionally fails the run when a stitched trace is missing stages or
// has them out of causal order — the CI smoke for the tracing path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/bits"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"funcdb"
	"funcdb/client"
	"funcdb/internal/cluster"
	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/metrics"
	"funcdb/internal/relation"
	"funcdb/internal/reqtrace"
	"funcdb/internal/value"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fdbload:", err)
		os.Exit(1)
	}
}

// loadConfig is the resolved flag set, echoed into the JSON report so a
// checked-in result names the run that produced it.
type loadConfig struct {
	Addrs      []string      `json:"addrs,omitempty"`
	Spawn      int           `json:"spawn,omitempty"`
	Duration   time.Duration `json:"-"`
	DurationS  float64       `json:"duration_s"`
	Conns      int           `json:"conns"`
	Rate       int           `json:"rate_ops_s"`
	ReadPct    int           `json:"read_pct"`
	Keys       int           `json:"keys"`
	ZipfS      float64       `json:"zipf_s"`
	Relations  []string      `json:"relations"`
	Seed       int64         `json:"seed"`
	Prepared    bool          `json:"prepared,omitempty"`
	Failover    bool          `json:"failover,omitempty"`
	KillNode    int           `json:"kill_node,omitempty"`
	KillAfter   time.Duration `json:"-"`
	KillAfterS  float64       `json:"kill_after_s,omitempty"`
	Trace       bool          `json:"trace,omitempty"`
	TraceSample int           `json:"trace_sample,omitempty"`
	TraceCheck  bool          `json:"-"`
}

// latencyDoc is one histogram rendered for the report, in microseconds.
type latencyDoc struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Mean  float64 `json:"mean"`
}

// nodeDoc is one cluster node's state at the end of the run. The heap/GC
// fields come from the node's runtime section — the same document its
// /debug/vars endpoint serves — collected over the wire Stats sweep.
type nodeDoc struct {
	Addr           string  `json:"addr"`
	Version        int64   `json:"version"`
	Admitted       int64   `json:"admitted"`
	Reads          int64   `json:"reads"`
	Forwards       int64   `json:"forwards"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes,omitempty"`
	NumGC          uint32  `json:"num_gc,omitempty"`
	GCPauseMs      float64 `json:"gc_pause_ms,omitempty"`
	Goroutines     int     `json:"goroutines,omitempty"`
}

// heapDoc is the driver process's heap/GC accounting over the run:
// MemStats deltas (start of load to end of load), so allocs_per_op is the
// client-side wire path's allocation cost per completed operation. With
// --spawn the server nodes run in the same process, so the numbers cover
// the whole loopback stack.
type heapDoc struct {
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	Mallocs         uint64  `json:"mallocs"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	NumGC           uint32  `json:"num_gc"`
	GCPauseTotalMs  float64 `json:"gc_pause_total_ms"`
	GoroutinesPeak  int     `json:"goroutines_peak"`
}

// baselineDoc summarizes the prior report a run was compared against, so
// a checked-in BENCH artifact carries its own before/after context.
type baselineDoc struct {
	Path           string  `json:"path"`
	Conns          int     `json:"conns"`
	Rate           int     `json:"rate"`
	ThroughputOpsS float64 `json:"throughput_ops_s"`
	P50Us          float64 `json:"p50_us"`
	P99Us          float64 `json:"p99_us"`
	AllocsPerOp    float64 `json:"allocs_per_op,omitempty"`
}

// overheadDoc is the lane-commit microbenchmark result.
type overheadDoc struct {
	UninstrumentedNS float64 `json:"uninstrumented_ns_per_op"`
	InstrumentedNS   float64 `json:"instrumented_ns_per_op"`
	OverheadPct      float64 `json:"overhead_pct"`
}

// traceDoc is the report's request-tracing section (--trace): how many
// traces each side published, how many stitched across nodes, and the
// slowest stitched requests by client-observed total.
type traceDoc struct {
	ClientSampled   int            `json:"client_sampled"`
	ServerPublished int            `json:"server_published"`
	Groups          int            `json:"groups"`
	MultiNodeGroups int            `json:"multi_node_groups"`
	StageOrderOK    bool           `json:"stage_order_ok"`
	Problems        []string       `json:"problems,omitempty"`
	Slowest         []traceSummary `json:"slowest,omitempty"`
}

// traceSummary is one stitched trace's headline numbers.
type traceSummary struct {
	ID      string  `json:"id"`
	TotalUs float64 `json:"total_us"`
	Nodes   int     `json:"nodes"`
	Spans   int     `json:"spans"`
}

// report is the JSON document --out writes.
type report struct {
	Bench             string       `json:"bench"`
	Config            loadConfig   `json:"config"`
	ElapsedS          float64      `json:"elapsed_s"`
	Ops               int64        `json:"ops"`
	Reads             int64        `json:"reads"`
	Writes            int64        `json:"writes"`
	Errors            int64        `json:"errors"`
	ThroughputOpsS    float64      `json:"throughput_ops_s"`
	Latency           latencyDoc   `json:"latency_us"`
	ReadLatency       latencyDoc   `json:"read_latency_us"`
	WriteLatency      latencyDoc   `json:"write_latency_us"`
	Nodes             []nodeDoc    `json:"nodes,omitempty"`
	ReplicationLagMax int64        `json:"replication_lag_max"`
	AckedKeys         int64        `json:"acked_keys,omitempty"`
	LostAcked         int64        `json:"lost_acked"`
	Heap              *heapDoc     `json:"heap,omitempty"`
	Baseline          *baselineDoc `json:"baseline,omitempty"`
	EngineOverhead    *overheadDoc `json:"engine_overhead,omitempty"`
	Trace             *traceDoc    `json:"trace,omitempty"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fdbload", flag.ContinueOnError)
	addrsFlag := fs.String("addrs", "", "comma-separated cluster node addresses to drive")
	spawn := fs.Int("spawn", 0, "spawn an in-process n-node loopback cluster instead of dialing --addrs")
	duration := fs.Duration("duration", 5*time.Second, "how long to drive load")
	conns := fs.Int("conns", 8, "concurrent client connections")
	rate := fs.Int("rate", 2000, "target ops/s across all connections (0 = closed loop)")
	readPct := fs.Int("read-pct", 50, "percentage of statements that are reads")
	keys := fs.Int("keys", 10000, "key-space size")
	zipfS := fs.Float64("zipf-s", 1.1, "Zipf skew (>1; larger = hotter head)")
	relations := fs.String("relations", "R,S,T", "comma-separated relations to spread keys over")
	seed := fs.Int64("seed", 1, "workload seed")
	prepared := fs.Bool("prepared", false, "drive prepared statements (text ships once per owner; executions are id/hash + args, parse-free on both sides)")
	out := fs.String("out", "", "also write the report as JSON to this path")
	memprofile := fs.String("memprofile", "", "write an allocation profile of the run to this path")
	baseline := fs.String("baseline", "", "prior report JSON to print a before/after delta against")
	overhead := fs.Bool("engine-overhead", false, "append the lane-commit instrumentation microbenchmark")
	trace := fs.Bool("trace", false, "sample request traces across the cluster and report stitched span timelines")
	traceSample := fs.Int("trace-sample", 64, "with --trace: trace one connection in n (all its requests sampled)")
	traceCheck := fs.Bool("trace-check", false, "with --trace: fail the run when stitched traces have missing or out-of-order stages")
	failover := fs.Bool("failover", false, "with --spawn: boot the cluster with failover enabled (leases, promotion, epoch fencing)")
	killNode := fs.Int("kill-node", -1, "with --spawn: crash this node index mid-run (implies --failover); acked writes are audited against the survivors")
	killAfter := fs.Duration("kill-after", 0, "when to crash --kill-node after load starts (0 = duration/3)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := loadConfig{
		Spawn: *spawn, Duration: *duration, DurationS: duration.Seconds(),
		Conns: *conns, Rate: *rate, ReadPct: *readPct, Keys: *keys,
		ZipfS: *zipfS, Seed: *seed, Prepared: *prepared,
		Failover: *failover || *killNode >= 0,
		KillNode: *killNode, KillAfter: *killAfter,
		Trace: *trace || *traceCheck, TraceCheck: *traceCheck,
	}
	if cfg.Trace {
		cfg.TraceSample = *traceSample
		if cfg.TraceSample <= 0 {
			return fmt.Errorf("--trace-sample must be >= 1 (got %d)", cfg.TraceSample)
		}
	}
	if cfg.KillNode >= 0 {
		if cfg.KillAfter <= 0 {
			cfg.KillAfter = cfg.Duration / 3
		}
		cfg.KillAfterS = cfg.KillAfter.Seconds()
	}
	for _, r := range strings.Split(*relations, ",") {
		if r != "" {
			cfg.Relations = append(cfg.Relations, r)
		}
	}
	if len(cfg.Relations) == 0 || cfg.Conns <= 0 || cfg.Keys <= 0 {
		return fmt.Errorf("need at least one relation, one connection and one key")
	}
	if cfg.Conns > maxConns {
		return fmt.Errorf("--conns %d exceeds the driver's limit of %d", cfg.Conns, maxConns)
	}
	if cfg.ZipfS <= 1 {
		return fmt.Errorf("--zipf-s must be > 1 (got %g)", cfg.ZipfS)
	}
	// Read the baseline before spending a run on a typo'd path.
	var base *report
	if *baseline != "" {
		var err error
		if base, err = loadBaseline(*baseline); err != nil {
			return err
		}
	}

	var nodes []*funcdb.ClusterNode
	if *spawn > 0 {
		if cfg.KillNode >= *spawn {
			return fmt.Errorf("--kill-node %d out of range for --spawn %d", cfg.KillNode, *spawn)
		}
		if cfg.Failover && *spawn < 2 {
			return fmt.Errorf("--failover needs --spawn >= 2 (a mirror must exist to promote)")
		}
		var tracing *funcdb.TracingConfig
		if cfg.Trace {
			tracing = &funcdb.TracingConfig{SampleEvery: cfg.TraceSample}
		}
		addrs, spawned, shutdown, err := spawnCluster(*spawn, cfg.Relations, cfg.Failover, tracing)
		if err != nil {
			return err
		}
		defer shutdown()
		cfg.Addrs, nodes = addrs, spawned
		fmt.Fprintf(stdout, "spawned %d-node loopback cluster: %s\n", *spawn, strings.Join(addrs, " "))
	} else {
		if cfg.KillNode >= 0 {
			return fmt.Errorf("--kill-node needs --spawn (the crash is in-process)")
		}
		cfg.Addrs = splitComma(*addrsFlag)
		if len(cfg.Addrs) == 0 {
			return fmt.Errorf("give --addrs or --spawn")
		}
	}

	if err := checkFDBudget(cfg.Conns, len(cfg.Addrs), *spawn > 0); err != nil {
		return err
	}

	if *memprofile != "" {
		runtime.MemProfileRate = 16 * 1024 // finer grain: the run is short and alloc sites matter
	}
	rep, err := drive(cfg, nodes, stdout)
	if err != nil {
		return err
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "allocation profile written to %s\n", *memprofile)
	}
	if *overhead {
		od := engineOverhead()
		rep.EngineOverhead = &od
		fmt.Fprintf(stdout, "engine overhead: %.0f ns/op uninstrumented, %.0f ns/op instrumented (%+.1f%%)\n",
			od.UninstrumentedNS, od.InstrumentedNS, od.OverheadPct)
	}
	if base != nil {
		bd := &baselineDoc{
			Path:           *baseline,
			Conns:          base.Config.Conns,
			Rate:           base.Config.Rate,
			ThroughputOpsS: base.ThroughputOpsS,
			P50Us:          base.Latency.P50,
			P99Us:          base.Latency.P99,
		}
		if base.Heap != nil {
			bd.AllocsPerOp = base.Heap.AllocsPerOp
		}
		rep.Baseline = bd
	}
	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	}
	if base != nil {
		printDelta(stdout, rep, base, *baseline)
	}
	if rep.LostAcked > 0 {
		return fmt.Errorf("kill smoke: %d of %d acked keys lost after crashing node %d", rep.LostAcked, rep.AckedKeys, cfg.KillNode)
	}
	if cfg.TraceCheck {
		switch {
		case rep.Trace == nil || rep.Trace.MultiNodeGroups == 0:
			return fmt.Errorf("trace smoke: no trace stitched across nodes (lower --trace-sample or raise --duration)")
		case !rep.Trace.StageOrderOK:
			return fmt.Errorf("trace smoke: %d stage problems, first: %s", len(rep.Trace.Problems), rep.Trace.Problems[0])
		}
	}
	return nil
}

// maxConns bounds --conns: beyond this the driver itself (goroutines,
// FDs, scheduler pressure) becomes the bottleneck being measured.
const maxConns = 65536

// checkFDBudget refuses a run whose connection count cannot fit the
// process's file-descriptor limit. A cluster client may hold one
// connection per node; with --spawn the server side of every connection
// lives in this process too.
func checkFDBudget(conns, nodes int, spawned bool) error {
	limit, ok := fdLimit()
	if !ok {
		return nil // no rlimit on this platform; let the OS complain
	}
	need := uint64(conns) * uint64(nodes)
	if spawned {
		need *= 2
	}
	need += 64 // listeners, archives, stats sweep, stdio slack
	if need > limit {
		return fmt.Errorf("--conns %d needs ~%d file descriptors but the limit is %d (raise ulimit -n or lower --conns)",
			conns, need, limit)
	}
	return nil
}

// loadBaseline parses a prior report file (e.g. the checked-in BENCH of
// the previous PR).
func loadBaseline(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	base := new(report)
	if err := json.Unmarshal(buf, base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return base, nil
}

// printDelta renders the headline before/after movement against the
// baseline report.
func printDelta(w io.Writer, rep, base *report, path string) {
	pct := func(now, was float64) string {
		if was == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(now-was)/was)
	}
	fmt.Fprintf(w, "delta vs %s (conns %d -> %d):\n", path, base.Config.Conns, rep.Config.Conns)
	fmt.Fprintf(w, "  throughput: %.0f -> %.0f ops/s (%s)\n",
		base.ThroughputOpsS, rep.ThroughputOpsS, pct(rep.ThroughputOpsS, base.ThroughputOpsS))
	fmt.Fprintf(w, "  p50: %.0f -> %.0f us (%s)   p99: %.0f -> %.0f us (%s)\n",
		base.Latency.P50, rep.Latency.P50, pct(rep.Latency.P50, base.Latency.P50),
		base.Latency.P99, rep.Latency.P99, pct(rep.Latency.P99, base.Latency.P99))
	switch {
	case base.Heap != nil && rep.Heap != nil:
		fmt.Fprintf(w, "  allocs/op: %.1f -> %.1f (%s)   gc pauses: %.1f -> %.1f ms\n",
			base.Heap.AllocsPerOp, rep.Heap.AllocsPerOp, pct(rep.Heap.AllocsPerOp, base.Heap.AllocsPerOp),
			base.Heap.GCPauseTotalMs, rep.Heap.GCPauseTotalMs)
	case rep.Heap != nil:
		fmt.Fprintf(w, "  allocs/op: n/a -> %.1f (baseline predates heap accounting)\n", rep.Heap.AllocsPerOp)
	}
}

// ackedKey names one write the cluster acknowledged, for the post-kill
// audit: the promoted survivor must still hold every one of them.
type ackedKey struct {
	rel string
	key int
}

// drive runs the workload and assembles the report. nodes is non-nil
// only with --spawn; it is what --kill-node crashes.
func drive(cfg loadConfig, nodes []*funcdb.ClusterNode, stdout io.Writer) (*report, error) {
	var (
		lat, readLat, writeLat metrics.Histogram
		reads, writes, errs    metrics.Counter
	)
	// Shared open-loop scheduler: ONE arrival timeline at --rate, with
	// every connection claiming the next unclaimed slot atomically. At
	// thousands of connections this is what keeps the offered load exact —
	// per-connection pacing would need each conn to hold its own interval
	// (rate/conns can round to zero), and a stalled connection would
	// silently drop its share of the schedule. Here a slow connection just
	// claims fewer slots while the rest keep the timeline full, and its
	// latency is still measured from the slot's scheduled time.
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / float64(cfg.Rate))
	}
	var sched atomic.Int64

	// Dial every connection BEFORE the timeline starts: at thousands of
	// connections the dial ramp takes real time, and counting it against
	// the schedule would charge connection setup to statement latency.
	clients := make([]*client.ClusterClient, cfg.Conns)
	// Prepared mode: one find and one insert handle per (connection,
	// relation), built and parsed during the dial ramp — handle setup is
	// one-time cost like the dials, not per-statement work, so it happens
	// before the heap baseline and the timeline start.
	var findStmts, insStmts []map[string]*client.ClusterStmt
	if cfg.Prepared {
		findStmts = make([]map[string]*client.ClusterStmt, cfg.Conns)
		insStmts = make([]map[string]*client.ClusterStmt, cfg.Conns)
	}
	var dialWG sync.WaitGroup
	dialFailed := make(chan error, cfg.Conns)
	// With failover on, clients ride through the promotion window: retry
	// with re-resolved placement for up to half the run rather than
	// surfacing the first fenced/dead-connection error.
	retryOpt := func(w int, opts []client.ClusterOption) []client.ClusterOption {
		if cfg.Failover {
			opts = append(opts, client.WithFailoverRetry(cfg.Duration/2+time.Second))
		}
		// Connection-level sampling: trace one connection in
		// --trace-sample, every request on it sampled. Per-request
		// counters would never fire at high conn counts where each
		// connection issues only a handful of requests.
		if cfg.Trace && w%cfg.TraceSample == 0 {
			opts = append(opts, client.WithClusterTracing(funcdb.TracingConfig{SampleEvery: 1}))
		}
		return opts
	}
	for w := 0; w < cfg.Conns; w++ {
		dialWG.Add(1)
		go func(w int) {
			defer dialWG.Done()
			cl, err := client.DialCluster(cfg.Addrs,
				retryOpt(w, []client.ClusterOption{client.WithClusterOrigin(fmt.Sprintf("load%d", w))})...)
			if err != nil {
				dialFailed <- err
				return
			}
			clients[w] = cl
			if cfg.Prepared {
				findStmts[w] = make(map[string]*client.ClusterStmt, len(cfg.Relations))
				insStmts[w] = make(map[string]*client.ClusterStmt, len(cfg.Relations))
				for _, rel := range cfg.Relations {
					f, i := cl.Prepare("find ? in "+rel), cl.Prepare("insert (?, ?) into "+rel)
					if _, err := f.NumParams(); err != nil { // parse now, not on the timeline
						dialFailed <- err
						return
					}
					if _, err := i.NumParams(); err != nil {
						dialFailed <- err
						return
					}
					findStmts[w][rel], insStmts[w][rel] = f, i
				}
			}
		}(w)
	}
	dialWG.Wait()
	close(dialFailed)
	if err := <-dialFailed; err != nil {
		for _, cl := range clients {
			if cl != nil {
				cl.Close()
			}
		}
		return nil, err
	}

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	goroutinePeak := runtime.NumGoroutine()
	peakDone := make(chan struct{})
	var peakWG sync.WaitGroup
	peakWG.Add(1)
	go func() {
		defer peakWG.Done()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-peakDone:
				return
			case <-tick.C:
				if n := runtime.NumGoroutine(); n > goroutinePeak {
					goroutinePeak = n
				}
			}
		}
	}()

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	trackAcked := cfg.KillNode >= 0
	var acked sync.Map // ackedKey -> struct{}
	if trackAcked && nodes != nil {
		killTimer := time.AfterFunc(cfg.KillAfter, func() {
			nodes[cfg.KillNode].Kill()
			fmt.Fprintf(stdout, "crashed node %d (%s) %v into the run\n",
				cfg.KillNode, cfg.Addrs[cfg.KillNode], cfg.KillAfter.Round(time.Millisecond))
		})
		defer killTimer.Stop()
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w]
			defer cl.Close()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
			// Prepared mode: the handles were built and parsed during the
			// dial ramp; the write value is a precomputed per-worker tag —
			// the hot loop formats no strings and parses nothing.
			var findStmt, insStmt map[string]*client.ClusterStmt
			var wTag funcdb.Item
			if cfg.Prepared {
				findStmt, insStmt = findStmts[w], insStmts[w]
				wTag = value.Str(fmt.Sprintf("w%d", w))
			}
			for {
				var next time.Time
				if interval > 0 {
					// Claim the next arrival slot on the shared timeline.
					slot := sched.Add(1) - 1
					next = start.Add(time.Duration(slot) * interval)
					if next.After(deadline) {
						return
					}
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
				} else {
					next = time.Now()
					if next.After(deadline) {
						return
					}
				}
				key := int(zipf.Uint64())
				rel := cfg.Relations[key%len(cfg.Relations)]
				isRead := rng.Intn(100) < cfg.ReadPct
				var resp funcdb.Response
				var err error
				if cfg.Prepared {
					if isRead {
						resp, err = findStmt[rel].Exec(value.Int(int64(key)))
					} else {
						resp, err = insStmt[rel].Exec(value.Int(int64(key)), wTag)
					}
				} else if isRead {
					resp, err = cl.Exec(fmt.Sprintf("find %d in %s", key, rel))
				} else {
					resp, err = cl.Exec(fmt.Sprintf("insert (%d, \"w%d\") into %s", key, w, rel))
				}
				// Latency from the SCHEDULED arrival: queueing counts.
				d := time.Since(next)
				if err != nil || resp.Err != nil {
					errs.Inc()
				} else {
					lat.Observe(d.Nanoseconds())
					if isRead {
						reads.Inc()
						readLat.Observe(d.Nanoseconds())
					} else {
						writes.Inc()
						writeLat.Observe(d.Nanoseconds())
						if trackAcked {
							acked.Store(ackedKey{rel, key}, struct{}{})
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(peakDone)
	peakWG.Wait()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	rep := &report{
		Bench: "fdbload", Config: cfg, ElapsedS: elapsed.Seconds(),
		Reads: reads.Load(), Writes: writes.Load(), Errors: errs.Load(),
	}
	rep.Ops = rep.Reads + rep.Writes
	rep.ThroughputOpsS = float64(rep.Ops) / elapsed.Seconds()
	heap := &heapDoc{
		HeapAllocBytes:  ms1.HeapAlloc,
		TotalAllocBytes: ms1.TotalAlloc - ms0.TotalAlloc,
		Mallocs:         ms1.Mallocs - ms0.Mallocs,
		NumGC:           ms1.NumGC - ms0.NumGC,
		GCPauseTotalMs:  float64(ms1.PauseTotalNs-ms0.PauseTotalNs) / 1e6,
		GoroutinesPeak:  goroutinePeak,
	}
	if rep.Ops > 0 {
		heap.AllocsPerOp = float64(heap.Mallocs) / float64(rep.Ops)
	}
	rep.Heap = heap
	rep.Latency = toLatencyDoc(lat.Snapshot())
	rep.ReadLatency = toLatencyDoc(readLat.Snapshot())
	rep.WriteLatency = toLatencyDoc(writeLat.Snapshot())

	// One stats sweep across the cluster: per-node state and the worst
	// replication lag (node i's version minus any peer's applied mirror
	// of i). Failures here degrade the report, not the run.
	statsCl, err := client.DialCluster(cfg.Addrs, client.WithClusterOrigin("load-stats"))
	if err == nil {
		snaps, _ := statsCl.StatsAll()
		versions := map[int]int64{}
		for i, addr := range cfg.Addrs {
			snap, ok := snaps[addr]
			if !ok {
				continue
			}
			versions[i] = snap.Version
			nd := nodeDoc{
				Addr: addr, Version: snap.Version,
				Admitted: snap.Engine.Admitted, Reads: snap.Engine.Reads,
			}
			if snap.Server != nil {
				nd.Forwards = snap.Server.Forwards
			}
			if snap.Runtime != nil {
				nd.HeapAllocBytes = snap.Runtime.HeapAllocBytes
				nd.NumGC = snap.Runtime.NumGC
				nd.GCPauseMs = float64(snap.Runtime.GCPauseTotalNs) / 1e6
				nd.Goroutines = snap.Runtime.Goroutines
			}
			rep.Nodes = append(rep.Nodes, nd)
		}
		for _, snap := range snaps {
			for _, peer := range snap.Peers {
				if v, ok := versions[peer.Peer]; ok && peer.ReplicaApplied >= 0 {
					if lag := v - peer.ReplicaApplied; lag > rep.ReplicationLagMax {
						rep.ReplicationLagMax = lag
					}
				}
			}
		}
		// With failover on, the snapshot carries liveness: how stale each
		// peer's last heartbeat is and how far its applied seq lags.
		if cfg.Failover {
			for _, addr := range cfg.Addrs {
				snap, ok := snaps[addr]
				if !ok {
					continue
				}
				for _, peer := range snap.Peers {
					if peer.HeartbeatAgeMs >= 0 {
						fmt.Fprintf(stdout, "  %s -> peer %d: heartbeat %.0fms ago, applied lag %d\n",
							addr, peer.Peer, peer.HeartbeatAgeMs, peer.AppliedLag)
					}
				}
			}
		}
		statsCl.Close()
	}

	if trackAcked {
		rep.LostAcked, rep.AckedKeys = auditAcked(cfg, &acked, stdout)
	}

	fmt.Fprintf(stdout, "%d ops in %v (%.0f ops/s): %d reads, %d writes, %d errors\n",
		rep.Ops, elapsed.Round(time.Millisecond), rep.ThroughputOpsS,
		rep.Reads, rep.Writes, rep.Errors)
	fmt.Fprintf(stdout, "latency: p50 %.0fµs  p90 %.0fµs  p99 %.0fµs  p99.9 %.0fµs  mean %.0fµs\n",
		rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.P999, rep.Latency.Mean)
	fmt.Fprintf(stdout, "heap: %.1f allocs/op, %d GCs (%.1f ms paused), %d goroutines peak\n",
		heap.AllocsPerOp, heap.NumGC, heap.GCPauseTotalMs, heap.GoroutinesPeak)
	printHistogram(stdout, lat.Snapshot())
	if rep.ReplicationLagMax > 0 || len(rep.Nodes) > 1 {
		fmt.Fprintf(stdout, "replication lag (max): %d commits\n", rep.ReplicationLagMax)
	}
	if cfg.Trace {
		rep.Trace = collectTraces(cfg, clients, stdout)
	}
	return rep, nil
}

// collectTraces gathers the run's traces from both sides — the driver's
// own cluster-client recorders and every node's published ring (over the
// wire Traces frame) — stitches them by id, prints exemplar ids next to
// the histogram's latency buckets and the slowest stitched timelines,
// and verifies stage completeness and causal order.
func collectTraces(cfg loadConfig, clients []*client.ClusterClient, stdout io.Writer) *traceDoc {
	var all []funcdb.RequestTrace
	doc := &traceDoc{}
	for _, cl := range clients {
		if cl == nil {
			continue
		}
		ts := cl.LocalTraces()
		doc.ClientSampled += len(ts)
		all = append(all, ts...)
	}
	if tcl, err := client.DialCluster(cfg.Addrs, client.WithClusterOrigin("load-trace")); err == nil {
		ts, errs := tcl.TracesAll()
		for addr, err := range errs {
			fmt.Fprintf(stdout, "trace sweep: %s: %v\n", addr, err)
		}
		doc.ServerPublished = len(ts)
		all = append(all, ts...)
		tcl.Close()
	} else {
		fmt.Fprintf(stdout, "trace sweep could not dial: %v\n", err)
	}

	groups := reqtrace.Stitch(all)
	doc.Groups = len(groups)
	for _, g := range groups {
		if countNodes(g) > 1 {
			doc.MultiNodeGroups++
		}
	}
	doc.Problems = checkStageOrder(groups)
	doc.StageOrderOK = len(doc.Problems) == 0

	// Only multi-node groups are worth a timeline: a client fragment whose
	// server half was evicted from a node's ring tells no story.
	stitched := groups[:0:0]
	for _, g := range groups {
		if countNodes(g) > 1 {
			stitched = append(stitched, g)
		}
	}
	sort.SliceStable(stitched, func(i, j int) bool {
		return groupTotal(stitched[i]) > groupTotal(stitched[j])
	})

	fmt.Fprintf(stdout, "traces: %d sampled client-side, %d published by nodes, %d stitched across nodes\n",
		doc.ClientSampled, doc.ServerPublished, doc.MultiNodeGroups)
	printTraceExemplars(stdout, stitched)
	const slowest = 3
	for i, g := range stitched {
		if i >= slowest {
			break
		}
		doc.Slowest = append(doc.Slowest, traceSummary{
			ID:      g[0].ID,
			TotalUs: float64(groupTotal(g)) / 1e3,
			Nodes:   countNodes(g),
			Spans:   countSpans(g),
		})
		if i == 0 {
			fmt.Fprintf(stdout, "slowest stitched traces:\n")
		}
		var b strings.Builder
		reqtrace.RenderGroup(&b, g)
		fmt.Fprint(stdout, b.String())
	}
	if !doc.StageOrderOK {
		fmt.Fprintf(stdout, "trace stage check: %d problems, first: %s\n", len(doc.Problems), doc.Problems[0])
	} else if doc.MultiNodeGroups > 0 {
		fmt.Fprintf(stdout, "trace stage check: ok (%d stitched traces, stages present and in causal order)\n", doc.MultiNodeGroups)
	}
	return doc
}

// countNodes returns the number of distinct nodes in a stitched group.
func countNodes(g []funcdb.RequestTrace) int {
	seen := map[string]bool{}
	for _, t := range g {
		seen[t.Node] = true
	}
	return len(seen)
}

func countSpans(g []funcdb.RequestTrace) (n int) {
	for _, t := range g {
		n += len(t.Spans)
	}
	return n
}

// groupTotal is the group's client-observed total: the hop-0 fragment's
// wall time, or the longest fragment when the client half is missing.
func groupTotal(g []funcdb.RequestTrace) int64 {
	var max int64
	for _, t := range g {
		if t.Hop == 0 {
			return t.Total
		}
		if t.Total > max {
			max = t.Total
		}
	}
	return max
}

// printTraceExemplars prints one trace id next to each latency bucket of
// the histogram above it — the slowest stitched trace whose total falls
// in that bucket — so a bucket's tail has a concrete request to open.
func printTraceExemplars(w io.Writer, stitched [][]funcdb.RequestTrace) {
	// Same bucketing as metrics.Histogram: bucket b >= 1 holds
	// [2^(b-1), 2^b - 1] nanoseconds.
	type exemplar struct {
		id    string
		total int64
	}
	byBucket := map[int]exemplar{}
	for _, g := range stitched {
		total := groupTotal(g)
		if total <= 0 {
			continue
		}
		b := bits.Len64(uint64(total))
		if total > byBucket[b].total {
			byBucket[b] = exemplar{id: g[0].ID, total: total}
		}
	}
	if len(byBucket) == 0 {
		return
	}
	buckets := make([]int, 0, len(byBucket))
	for b := range byBucket {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	fmt.Fprintf(w, "trace exemplars by latency bucket:\n")
	for _, b := range buckets {
		ex := byBucket[b]
		lo := time.Duration(int64(1) << uint(b-1))
		fmt.Fprintf(w, "  %10v  trace %s (%v)\n", lo, ex.id, time.Duration(ex.total).Round(time.Microsecond))
	}
}

// requestBackbone is the span sequence every request-path server
// fragment records, in causal order.
var requestBackbone = []string{"conn-read", "decode", "encode", "flush"}

// checkStageOrder verifies the stitched groups against the tracing
// pipeline's invariants — the substance behind --trace-check. A hop
// missing from a group is NOT a problem (both sides keep bounded rings,
// so one side's fragment can outlive the other's); what is checked is
// every fragment that IS present:
//
//   - no span runs backwards (negative duration);
//   - a driver fragment (node "client:*") carries client-send;
//   - a request-path server fragment carries conn-read and decode, and
//     whatever backbone stages it has appear in causal order;
//   - fragments of consecutive hops present in one group start in hop
//     order (wall clocks — meaningful on the one-process --spawn smoke);
//   - at least one group stitches a driver fragment to a server fragment
//     with the full conn-read → decode → encode → flush backbone, and at
//     least one trace reaches replica-apply: the full pipeline, observed
//     end to end at least once per run.
func checkStageOrder(groups [][]funcdb.RequestTrace) (problems []string) {
	addProblem := func(format string, args ...any) {
		if len(problems) < 16 { // enough to diagnose, bounded in the report
			problems = append(problems, fmt.Sprintf(format, args...))
		}
	}
	spanStart := func(t funcdb.RequestTrace, stage string) (int64, bool) {
		for _, s := range t.Spans {
			if s.Stage == stage {
				return s.Start, true
			}
		}
		return 0, false
	}
	fullPath, applySeen := false, false
	for _, g := range groups {
		id := g[0].ID
		hasDriver, hasFullServer := false, false
		for _, t := range g {
			for _, s := range t.Spans {
				if s.Dur < 0 {
					addProblem("trace %s: %s span on %s has negative duration", id, s.Stage, t.Node)
				}
			}
			if strings.HasPrefix(t.Node, "client:") {
				hasDriver = true
				if _, ok := spanStart(t, "client-send"); !ok {
					addProblem("trace %s: driver fragment (%s) missing client-send", id, t.Node)
				}
				continue
			}
			if _, apply := spanStart(t, "replica-apply"); apply {
				applySeen = true
				continue
			}
			// A request-path server fragment: conn-read and decode are
			// recorded the instant the frame is read, so their absence is an
			// instrumentation regression; later backbone stages may be
			// legitimately absent (a redirect reply), but the ones present
			// must be causally ordered.
			last, complete := int64(0), true
			for _, stage := range requestBackbone {
				start, ok := spanStart(t, stage)
				if !ok {
					complete = false
					if stage == "conn-read" || stage == "decode" {
						addProblem("trace %s: hop %d (%s) missing %s", id, t.Hop, t.Node, stage)
					}
					continue
				}
				if start < last {
					addProblem("trace %s: hop %d (%s) has %s before its predecessor", id, t.Hop, t.Node, stage)
				}
				last = start
			}
			if complete {
				hasFullServer = true
			}
		}
		if hasDriver && hasFullServer {
			fullPath = true
		}
		// Causality across the hops present: a later hop cannot start
		// before the earliest span of the hop that caused it. conn-read is
		// excluded — it is a WAITING span that begins when the server blocks
		// on the socket, before the previous hop has sent anything.
		earliest := map[int]int64{}
		for _, t := range g {
			for _, s := range t.Spans {
				if s.Stage == "conn-read" {
					continue
				}
				if cur, ok := earliest[t.Hop]; !ok || s.Start < cur {
					earliest[t.Hop] = s.Start
				}
			}
		}
		for h := range earliest {
			if prev, ok := earliest[h-1]; ok && earliest[h] < prev {
				addProblem("trace %s: hop %d starts before hop %d", id, h, h-1)
			}
		}
	}
	if !fullPath {
		addProblem("no stitched trace carries the full client → server backbone")
	}
	if !applySeen {
		addProblem("no trace reaches replica-apply")
	}
	return problems
}

// auditAcked re-reads every acknowledged write against the survivors:
// with the crashed node fenced out, the promoted mirror must serve each
// acked key — an acked insert that cannot be found again was lost.
func auditAcked(cfg loadConfig, acked *sync.Map, stdout io.Writer) (lost, total int64) {
	cl, err := client.DialCluster(cfg.Addrs,
		client.WithClusterOrigin("load-audit"),
		client.WithFailoverRetry(10*time.Second))
	if err != nil {
		fmt.Fprintf(stdout, "acked-write audit could not dial: %v\n", err)
		return 0, 0
	}
	defer cl.Close()
	acked.Range(func(k, _ any) bool {
		ak := k.(ackedKey)
		total++
		resp, err := cl.Exec(fmt.Sprintf("find %d in %s", ak.key, ak.rel))
		if err != nil || resp.Err != nil || !resp.Found {
			lost++
		}
		return true
	})
	fmt.Fprintf(stdout, "acked-write audit: %d keys acked, %d lost\n", total, lost)
	return lost, total
}

// toLatencyDoc converts a nanosecond histogram into microsecond quantiles.
func toLatencyDoc(h metrics.HistogramSnapshot) latencyDoc {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	return latencyDoc{
		Count: h.Count,
		P50:   us(h.Quantile(0.50)),
		P90:   us(h.Quantile(0.90)),
		P99:   us(h.P99),
		P999:  us(h.P999),
		Mean:  us(int64(h.Mean())),
	}
}

// printHistogram renders the power-of-two latency buckets as a bar chart.
func printHistogram(w io.Writer, h metrics.HistogramSnapshot) {
	if h.Count == 0 {
		return
	}
	var max int64
	for _, n := range h.Buckets {
		if n > max {
			max = n
		}
	}
	for b, n := range h.Buckets {
		if n == 0 {
			continue
		}
		lo := time.Duration(0)
		if b > 0 {
			lo = time.Duration(int64(1) << uint(b-1))
		}
		bar := strings.Repeat("#", int(40*n/max))
		fmt.Fprintf(w, "  %10v %8d %s\n", lo, n, bar)
	}
}

// spawnCluster boots n cluster nodes on loopback: every port bound first,
// the address list shared, then the nodes opened over the bound
// listeners. Archives live in a temp directory the shutdown removes.
// With failover the nodes heartbeat at 100ms (lease 400ms) and the boot
// probation is waited out, so the first statement already has a settled
// ownership view.
func spawnCluster(n int, rels []string, failover bool, tracing *funcdb.TracingConfig) (addrs []string, nodes []*funcdb.ClusterNode, shutdown func(), err error) {
	dir, err := os.MkdirTemp("", "fdbload")
	if err != nil {
		return nil, nil, nil, err
	}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			os.RemoveAll(dir)
			return nil, nil, nil, err
		}
		lns[i] = ln
		addrs = append(addrs, ln.Addr().String())
	}
	stop := func() {
		for _, node := range nodes {
			node.Shutdown()
		}
		os.RemoveAll(dir)
	}
	for i := 0; i < n; i++ {
		ncfg := funcdb.ClusterNodeConfig{
			ID: i, Nodes: addrs, Listener: lns[i],
			Dir:       filepath.Join(dir, fmt.Sprintf("n%d", i)),
			Relations: rels,
			Durability: []funcdb.DurabilityOption{
				funcdb.GroupCommit(2 * time.Millisecond),
			},
			Tracing: tracing,
		}
		if failover {
			ncfg.Failover = &cluster.FailoverConfig{Heartbeat: 100 * time.Millisecond}
		}
		node, err := funcdb.OpenClusterNode(ncfg)
		if err != nil {
			for _, l := range lns[i:] {
				l.Close()
			}
			stop()
			return nil, nil, nil, err
		}
		nodes = append(nodes, node)
		go node.Serve()
	}
	if failover {
		for _, node := range nodes {
			if err := node.WaitReady(5 * time.Second); err != nil {
				stop()
				return nil, nil, nil, err
			}
		}
	}
	return addrs, nodes, stop, nil
}

// engineOverhead times the single-lane admission hot path with and
// without metrics, interleaved min-of-three so machine noise hits both
// sides: the observability layer's cost on the paper's core loop.
func engineOverhead() overheadDoc {
	const ops = 30000
	measure := func(opts ...core.EngineOption) float64 {
		e := core.NewEngine(database.New(relation.RepAVL, "R"), opts...)
		start := time.Now()
		for i := 0; i < ops; i++ {
			tx := core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v")))
			tx.Origin, tx.Seq = "bench", i
			e.Submit(tx)
		}
		e.Barrier()
		return float64(time.Since(start).Nanoseconds()) / ops
	}
	plain, inst := math.MaxFloat64, math.MaxFloat64
	for round := 0; round < 3; round++ {
		if v := measure(); v < plain {
			plain = v
		}
		var m metrics.Engine
		if v := measure(core.WithEngineMetrics(&m)); v < inst {
			inst = v
		}
	}
	return overheadDoc{
		UninstrumentedNS: plain,
		InstrumentedNS:   inst,
		OverheadPct:      100 * (inst - plain) / plain,
	}
}

// splitComma splits a comma-separated list, dropping empties.
func splitComma(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}
