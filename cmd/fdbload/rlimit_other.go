//go:build !unix

package main

// fdLimit reports no limit on platforms without RLIMIT_NOFILE; the OS
// surfaces its own errors if a run overcommits descriptors.
func fdLimit() (uint64, bool) { return 0, false }
