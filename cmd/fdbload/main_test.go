package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSpawnedClusterRun: a short self-contained run against a spawned
// cluster completes without errors and writes a well-formed JSON report.
func TestSpawnedClusterRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	err := run([]string{
		"--spawn", "2", "--duration", "400ms", "--conns", "2",
		"--rate", "400", "--keys", "100", "--out", out,
	}, &stdout)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, stdout.String())
	}

	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if rep.Bench != "fdbload" {
		t.Errorf("bench = %q", rep.Bench)
	}
	if rep.Ops == 0 {
		t.Error("no operations completed")
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors during the run\n%s", rep.Errors, stdout.String())
	}
	if rep.Ops != rep.Reads+rep.Writes {
		t.Errorf("ops %d != reads %d + writes %d", rep.Ops, rep.Reads, rep.Writes)
	}
	if rep.Latency.Count != rep.Ops {
		t.Errorf("latency count %d != ops %d", rep.Latency.Count, rep.Ops)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P999 < rep.Latency.P50 {
		t.Errorf("implausible quantiles: %+v", rep.Latency)
	}
	if len(rep.Nodes) != 2 {
		t.Errorf("report covers %d nodes, want 2", len(rep.Nodes))
	}
	var admitted int64
	for _, n := range rep.Nodes {
		admitted += n.Admitted
	}
	if admitted < rep.Writes {
		t.Errorf("cluster admitted %d < %d client writes", admitted, rep.Writes)
	}
	if !strings.Contains(stdout.String(), "latency: p50") {
		t.Errorf("no latency line in output:\n%s", stdout.String())
	}
}

// TestFlagValidation: bad configurations fail before any socket opens.
func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                                   // neither --addrs nor --spawn
		{"--spawn", "1", "--zipf-s", "0.5"},  // zipf needs s > 1
		{"--spawn", "1", "--relations", ""},  // no relations
		{"--spawn", "1", "--conns", "0"},     // no connections
		{"--spawn", "1", "--conns", "70000"}, // over the driver's limit
	} {
		var stdout bytes.Buffer
		if err := run(args, &stdout); err == nil {
			t.Errorf("run(%v) accepted a bad config", args)
		}
	}
}

// TestHeapReport: the report carries the driver's heap/GC accounting and
// per-node runtime sections scraped over the stats sweep.
func TestHeapReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	err := run([]string{
		"--spawn", "1", "--duration", "300ms", "--conns", "2",
		"--rate", "300", "--keys", "100", "--out", out,
	}, &stdout)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, stdout.String())
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if rep.Heap == nil {
		t.Fatal("report has no heap section")
	}
	if rep.Heap.Mallocs == 0 || rep.Heap.AllocsPerOp <= 0 {
		t.Errorf("implausible heap accounting: %+v", rep.Heap)
	}
	if rep.Heap.GoroutinesPeak <= 0 {
		t.Errorf("goroutine peak not sampled: %+v", rep.Heap)
	}
	for _, n := range rep.Nodes {
		if n.HeapAllocBytes == 0 || n.Goroutines == 0 {
			t.Errorf("node %s missing runtime section: %+v", n.Addr, n)
		}
	}
	if !strings.Contains(stdout.String(), "allocs/op") {
		t.Errorf("no heap line in output:\n%s", stdout.String())
	}
}

// TestBaselineDelta: --baseline prints the before/after movement and the
// written report embeds a summary of the baseline it was compared to.
func TestBaselineDelta(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(`{
		"bench": "fdbload",
		"config": {"conns": 8, "rate": 400},
		"throughput_ops_s": 400,
		"latency_us": {"p50": 700, "p99": 4000},
		"heap": {"allocs_per_op": 250}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "bench.json")
	var stdout bytes.Buffer
	err := run([]string{
		"--spawn", "1", "--duration", "300ms", "--conns", "2",
		"--rate", "300", "--keys", "100", "--out", out, "--baseline", base,
	}, &stdout)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "delta vs "+base) {
		t.Errorf("no delta section in output:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "allocs/op: 250.0 -> ") {
		t.Errorf("no allocs/op delta in output:\n%s", stdout.String())
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if rep.Baseline == nil {
		t.Fatal("report does not embed its baseline")
	}
	if rep.Baseline.Path != base || rep.Baseline.Conns != 8 ||
		rep.Baseline.P50Us != 700 || rep.Baseline.AllocsPerOp != 250 {
		t.Errorf("baseline summary mangled: %+v", rep.Baseline)
	}

	// A missing baseline file is a hard error, not a silent skip.
	if err := run([]string{
		"--spawn", "1", "--duration", "100ms", "--conns", "1",
		"--baseline", filepath.Join(dir, "nope.json"),
	}, &stdout); err == nil {
		t.Error("missing baseline file accepted")
	}
}

// TestThousandsOfConnections drives a spawned single-node cluster at
// 2048 connections: the per-connection goroutine budget must stay O(1) —
// a connection is one driver goroutine plus a bounded number of
// client/server goroutines — and the run must complete without errors.
// Skipped when the FD limit cannot hold the connection count.
func TestThousandsOfConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("2048-connection run is not a -short test")
	}
	const conns = 2048
	if limit, ok := fdLimit(); ok && limit < conns*2+256 {
		t.Skipf("fd limit %d too low for %d loopback connections", limit, conns)
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	err := run([]string{
		"--spawn", "1", "--duration", "2s", "--conns", "2048",
		"--rate", "2000", "--keys", "1000", "--out", out,
	}, &stdout)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, stdout.String())
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if rep.Ops == 0 {
		t.Error("no operations completed")
	}
	if rep.Errors > rep.Ops/100 {
		t.Errorf("%d errors in %d ops\n%s", rep.Errors, rep.Ops, stdout.String())
	}
	if rep.Heap == nil {
		t.Fatal("report has no heap section")
	}
	// Budget: one driver goroutine per connection, one server handler per
	// connection (spawned in-process), plus a fixed-size runtime floor.
	// 4x conns + slack catches a per-request or per-frame goroutine leak
	// while tolerating transient client/server helpers.
	if budget := conns*4 + 512; rep.Heap.GoroutinesPeak > budget {
		t.Errorf("goroutine peak %d exceeds budget %d at %d conns",
			rep.Heap.GoroutinesPeak, budget, conns)
	}
}
