package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSpawnedClusterRun: a short self-contained run against a spawned
// cluster completes without errors and writes a well-formed JSON report.
func TestSpawnedClusterRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	err := run([]string{
		"--spawn", "2", "--duration", "400ms", "--conns", "2",
		"--rate", "400", "--keys", "100", "--out", out,
	}, &stdout)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, stdout.String())
	}

	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if rep.Bench != "fdbload" {
		t.Errorf("bench = %q", rep.Bench)
	}
	if rep.Ops == 0 {
		t.Error("no operations completed")
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors during the run\n%s", rep.Errors, stdout.String())
	}
	if rep.Ops != rep.Reads+rep.Writes {
		t.Errorf("ops %d != reads %d + writes %d", rep.Ops, rep.Reads, rep.Writes)
	}
	if rep.Latency.Count != rep.Ops {
		t.Errorf("latency count %d != ops %d", rep.Latency.Count, rep.Ops)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P999 < rep.Latency.P50 {
		t.Errorf("implausible quantiles: %+v", rep.Latency)
	}
	if len(rep.Nodes) != 2 {
		t.Errorf("report covers %d nodes, want 2", len(rep.Nodes))
	}
	var admitted int64
	for _, n := range rep.Nodes {
		admitted += n.Admitted
	}
	if admitted < rep.Writes {
		t.Errorf("cluster admitted %d < %d client writes", admitted, rep.Writes)
	}
	if !strings.Contains(stdout.String(), "latency: p50") {
		t.Errorf("no latency line in output:\n%s", stdout.String())
	}
}

// TestFlagValidation: bad configurations fail before any socket opens.
func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                                  // neither --addrs nor --spawn
		{"--spawn", "1", "--zipf-s", "0.5"}, // zipf needs s > 1
		{"--spawn", "1", "--relations", ""}, // no relations
		{"--spawn", "1", "--conns", "0"},    // no connections
	} {
		var stdout bytes.Buffer
		if err := run(args, &stdout); err == nil {
			t.Errorf("run(%v) accepted a bad config", args)
		}
	}
}
