//go:build unix

package main

import "syscall"

// fdLimit reports the process's soft file-descriptor limit, used to
// refuse --conns settings the OS cannot satisfy before thousands of
// dials start failing halfway through a run.
func fdLimit() (uint64, bool) {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0, false
	}
	return uint64(rl.Cur), true
}
