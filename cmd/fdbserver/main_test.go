package main

import (
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"funcdb"
	"funcdb/client"
)

// startServer runs the server main loop in a goroutine and returns its
// bound address, the signal channel driving it, and a channel that
// yields run's error on exit.
func startServer(t *testing.T, args []string) (net.Addr, chan os.Signal, chan error, *strings.Builder) {
	t.Helper()
	sig := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run(args, &out, sig, func(a net.Addr) { ready <- a })
	}()
	select {
	case addr := <-ready:
		return addr, sig, done, &out
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
		return nil, nil, nil, nil
	}
}

// TestSigtermDrainsCleanly: acked commits survive a SIGTERM drain — the
// signal is a real OS signal delivered to this process, and recovery
// after restart sees every insert the client got a response for.
func TestSigtermDrainsCleanly(t *testing.T) {
	dir := t.TempDir()
	addr, sig, done, out := startServer(t, []string{
		"--listen", "127.0.0.1:0",
		"--data", dir,
		"--group-commit", "1h", // only a drain flush can save the batch
	})
	// Route the real signal into the server's channel, as main does.
	signal.Notify(sig, syscall.SIGTERM)
	defer signal.Stop(sig)

	c, err := client.Dial(addr.String(), client.WithOrigin("c0"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("create R using avl"); err != nil {
		t.Fatal(err)
	}
	const n = 40
	queries := make([]string, n)
	for i := range queries {
		queries[i] = fmt.Sprintf("insert (%d, \"v%d\") into R", i, i)
	}
	resps, err := c.ExecBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resps {
		if r.Err != nil {
			t.Fatalf("insert failed: %v", r.Err)
		}
	}
	// Every insert above is ACKED. Kill the server with a real SIGTERM.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not drain\noutput:\n%s", out.String())
	}
	c.Close()
	if !strings.Contains(out.String(), "draining") || !strings.Contains(out.String(), "store closed") {
		t.Errorf("drain log missing: %q", out.String())
	}

	// Restart: recovery must see every acked commit.
	re, err := funcdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Current().TotalTuples(); got != n {
		t.Fatalf("recovered %d tuples, want %d (acked commits lost in drain)", got, n)
	}
}

// TestServerRestartContinuesStream: a second server over the same
// directory picks the version stream up where the first left off.
func TestServerRestartContinuesStream(t *testing.T) {
	dir := t.TempDir()
	addr, sig, done, _ := startServer(t, []string{"--listen", "127.0.0.1:0", "--data", dir})
	c, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecBatch([]string{"create R", `insert (1, "a") into R`}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	sig <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	addr, sig, done, _ = startServer(t, []string{"--listen", "127.0.0.1:0", "--data", dir})
	c, err = client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Exec("count R")
	if err != nil || resp.Err != nil || resp.Count != 1 {
		t.Fatalf("recovered count: %+v, %v", resp, err)
	}
	c.Close()
	sig <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestBadFlags: flag errors exit run without leaving a listener behind.
func TestBadFlags(t *testing.T) {
	if err := run([]string{"--no-such-flag"}, &strings.Builder{}, nil, nil); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestSplitComma(t *testing.T) {
	if got := splitComma("a,b,,c"); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("splitComma = %q", got)
	}
	if got := splitComma(""); got != nil {
		t.Errorf("splitComma(\"\") = %q", got)
	}
}

// TestMultiDatabaseFlag: --databases hosts several stores on one
// listener, each durable under its own subdirectory, and a drain flushes
// them all.
func TestMultiDatabaseFlag(t *testing.T) {
	dir := t.TempDir()
	addr, sig, done, _ := startServer(t, []string{
		"--listen", "127.0.0.1:0",
		"--data", dir,
		"--databases", "aux",
		"--relations", "R",
	})

	cm, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Exec(`insert (1, "m") into R`); err != nil {
		t.Fatal(err)
	}
	cm.Close()
	ca, err := client.Dial(addr.String(), client.WithDatabase("aux"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Exec(`insert (2, "a") into R`); err != nil {
		t.Fatal(err)
	}
	ca.Close()

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}

	// Each store recovered independently from its own directory.
	main, err := funcdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer main.Close()
	if resp, err := main.Exec("find 1 in R"); err != nil || !resp.Found {
		t.Fatalf("main store lost its write: %+v %v", resp, err)
	}
	if resp, err := main.Exec("find 2 in R"); err != nil || resp.Found {
		t.Fatalf("main store sees aux's write: %+v %v", resp, err)
	}
	aux, err := funcdb.OpenDir(dir + "/aux")
	if err != nil {
		t.Fatal(err)
	}
	defer aux.Close()
	if resp, err := aux.Exec("find 2 in R"); err != nil || !resp.Found {
		t.Fatalf("aux store lost its write: %+v %v", resp, err)
	}
}
