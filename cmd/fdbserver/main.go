// Command fdbserver serves a funcdb store over TCP: the network front
// end of the admission pipeline. Each connection drives one session —
// its own origin tag, sequence space and prepared-statement view — and a
// connection's pipelined requests are admitted in lane-split batches, so
// disjoint clients land on disjoint admission lanes.
//
// With --data <dir>, the store is durable: committed writes land in the
// append-only archive (group commit by default, with the adaptive window
// flushing as each network batch lands), and restarting the server with
// the same flag recovers the database.
//
// With --databases a,b,c one listener hosts several stores: clients pick
// one with the Hello database field (funcdb/client WithDatabase);
// version-1 clients — and any client that names none — land on "main",
// which is always hosted. With --data, each extra store persists under
// its own subdirectory <dir>/<name> ("main" keeps <dir> itself, so
// existing single-store archives keep working).
//
// With --debug-addr, a second HTTP listener serves live introspection:
// /debug/stats (the metrics snapshot of every hosted database, indented
// JSON), /debug/vars (the same, compact), /debug/trace (published
// request traces when --trace is on; ?format=text for the timeline),
// and /debug/pprof/.
//
// With --trace, every request records a span timeline; 1 in
// --trace-sample requests is published to the ring, and anything at or
// over --trace-slow is always kept. Traces surface on /debug/trace, the
// wire Traces frame (fdbrepl .trace) and the store API.
//
// SIGTERM or SIGINT drains gracefully: stop accepting, answer everything
// fully read, flush the group-commit buffer, close the store. Every
// response a client received before the drain is durable after it.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"funcdb"
	"funcdb/internal/server"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	if err := run(os.Args[1:], os.Stdout, sig, nil); err != nil {
		fmt.Fprintln(os.Stderr, "fdbserver:", err)
		os.Exit(1)
	}
}

// run is main with its dependencies explicit, so tests can drive it:
// args are the command-line flags, sig delivers shutdown signals, and
// onReady (optional) receives the bound address once the listener is up.
func run(args []string, stdout io.Writer, sig <-chan os.Signal, onReady func(net.Addr)) error {
	fs := flag.NewFlagSet("fdbserver", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:4150", "TCP address to serve the wire protocol on")
	dataDir := fs.String("data", "", "archive directory: persist the store and recover it on restart")
	snapEvery := fs.Int("snapshot-every", 256, "with --data, snapshot the full version every n writes")
	groupWindow := fs.Duration("group-commit", 2*time.Millisecond, "with --data, group-commit window (0 = write through)")
	fsync := fs.Bool("fsync", false, "with --data, fsync every durable flush (power-loss safety)")
	lanes := fs.Int("lanes", 0, "admission lanes (0 = auto from GOMAXPROCS)")
	relations := fs.String("relations", "", "comma-separated relations to create in a fresh store")
	databases := fs.String("databases", "", "comma-separated database names to host on one listener (\"main\" is always hosted)")
	debugAddr := fs.String("debug-addr", "", "optional HTTP address for /debug/stats, /debug/vars, /debug/trace and /debug/pprof")
	traceOn := fs.Bool("trace", false, "record per-request span timelines (.trace, Traces frame, /debug/trace)")
	traceSample := fs.Int("trace-sample", 0, "with --trace, head-sample 1 in n requests (0 = default 1024)")
	traceSlow := fs.Duration("trace-slow", 0, "with --trace, always keep requests at or over this duration (0 = default 10ms, negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var durOpts []funcdb.DurabilityOption
	if *dataDir != "" {
		durOpts = []funcdb.DurabilityOption{funcdb.SnapshotEvery(*snapEvery)}
		if *groupWindow > 0 {
			durOpts = append(durOpts, funcdb.GroupCommit(*groupWindow))
		}
		if *fsync {
			durOpts = append(durOpts, funcdb.SyncEveryWrite())
		}
	}
	open := func(name string) (*funcdb.Store, error) {
		opts := []funcdb.Option{funcdb.WithOrigin("server")}
		if *dataDir != "" {
			dir := *dataDir
			if name != "main" {
				dir = filepath.Join(dir, name)
			}
			opts = append(opts, funcdb.WithDurability(dir, durOpts...))
		}
		if *lanes > 0 {
			opts = append(opts, funcdb.WithLanes(*lanes))
		}
		if *relations != "" {
			opts = append(opts, funcdb.WithRelations(splitComma(*relations)...))
		}
		if *traceOn {
			opts = append(opts, funcdb.WithTracing(funcdb.TracingConfig{
				SampleEvery:   *traceSample,
				SlowThreshold: *traceSlow,
			}))
		}
		return funcdb.Open(opts...)
	}

	names := append([]string{"main"}, splitComma(*databases)...)
	stores := map[string]*funcdb.Store{}
	hosts := map[string]server.Host{}
	closeAll := func() {
		for _, st := range stores {
			st.Close()
		}
	}
	for _, name := range names {
		if _, dup := stores[name]; dup {
			continue
		}
		st, err := open(name)
		if err != nil {
			closeAll()
			return err
		}
		stores[name] = st
		hosts[name] = st
	}
	store := stores["main"]

	srv := server.NewMulti(hosts)
	if err := srv.Listen(*listen); err != nil {
		closeAll()
		return err
	}

	var debugLn net.Listener
	if *debugAddr != "" {
		// One document across every hosted database, keyed by name; the
		// server section (connections, per-frame latency) appears once.
		snapshot := func() any {
			doc := map[string]any{"server": srv.Metrics().Snapshot()}
			dbs := map[string]funcdb.MetricsSnapshot{}
			for name, st := range stores {
				dbs[name] = st.MetricsSnapshot()
			}
			doc["databases"] = dbs
			return doc
		}
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			srv.Shutdown()
			closeAll()
			return fmt.Errorf("debug listener: %w", err)
		}
		debugLn = ln
		// /debug/trace merges every hosted database's published traces
		// into one newest-first list; Stitch/Render group them by id.
		traces := func() []funcdb.RequestTrace {
			var out []funcdb.RequestTrace
			for _, st := range stores {
				out = append(out, st.Traces()...)
			}
			return out
		}
		go http.Serve(ln, server.NewDebugMux(snapshot, traces))
		fmt.Fprintf(stdout, "fdbserver debug endpoints on http://%s/debug/\n", ln.Addr())
	}
	defer func() {
		if debugLn != nil {
			debugLn.Close()
		}
	}()
	cur := store.Current()
	fmt.Fprintf(stdout, "fdbserver listening on %s (%d databases, lanes %d, %d tuples in %d relations%s)\n",
		srv.Addr(), len(stores), store.Lanes(), cur.TotalTuples(), len(cur.RelationNames()),
		map[bool]string{true: ", durable", false: ""}[store.Durable()])
	if onReady != nil {
		onReady(srv.Addr())
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	select {
	case s := <-sig:
		fmt.Fprintf(stdout, "fdbserver: %v — draining\n", s)
	case err := <-serveDone:
		// Listener died without a signal: drain the live connection
		// handlers (their acked commits must still reach the archive)
		// before closing out.
		srv.Shutdown()
		closeAll()
		return err
	}
	if err := srv.Shutdown(); err != nil {
		closeAll()
		return err
	}
	<-serveDone
	for _, st := range stores {
		if err := st.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintln(stdout, "fdbserver: drained, store closed")
	return nil
}

// splitComma splits a comma-separated list, dropping empties.
func splitComma(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}
