// Command fdbrepl is an interactive shell over a functional store: the
// paper's "stream of transaction requests entered from a terminal".
//
// With --data <dir>, the store is durable: every committed write lands in
// the append-only archive under dir, and restarting the repl with the same
// flag recovers the session's database (and its full version stream for
// .at time travel).
//
// With --exec <file>, the repl runs in script mode: the file's queries are
// submitted as one batch (ExecBatch — one merge arbitration for the whole
// script), the responses are printed in order, and the process exits.
//
// Every line is a query; dot-commands inspect the system:
//
//	.help                 this text
//	.stats                structure-sharing counters
//	.versions             retained version stream
//	.at <version> <query> run a read-only query against an old version
//	.batch q1; q2; ...    submit several queries as one batch
//	.quit                 exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"funcdb"
	"funcdb/internal/query"
	"funcdb/internal/trace"
)

const helpText = `queries:
  insert (1, "widget", 3) into R      find 1 in R
  delete 1 from R                     scan R
  count R                             range 1 9 in R
  create R [using list|avl|2-3|paged]
commands:
  .help  .stats  .versions  .at <version> <query>  .batch q1; q2; ...  .quit`

func main() {
	dataDir := flag.String("data", "", "archive directory: persist the session and recover it on restart")
	snapEvery := flag.Int("snapshot-every", 256, "with --data, snapshot the full version every n writes")
	execFile := flag.String("exec", "", "script mode: run the file's queries as one batch and exit")
	lanes := flag.Int("lanes", 0, "admission lanes the engine shards its merge point into (0 = auto from GOMAXPROCS)")
	flag.Parse()

	opts := []funcdb.Option{funcdb.WithHistory(0), funcdb.WithOrigin("repl")}
	if *dataDir != "" {
		opts = append(opts, funcdb.WithDurability(*dataDir, funcdb.SnapshotEvery(*snapEvery)))
	}
	if *lanes > 0 {
		opts = append(opts, funcdb.WithLanes(*lanes))
	}
	store, err := funcdb.Open(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdbrepl:", err)
		os.Exit(1)
	}

	if *execFile != "" {
		out, err := runScript(store, *execFile)
		if out != "" {
			fmt.Println(out)
		}
		if err == nil {
			err = store.Close()
		} else {
			store.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdbrepl:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("funcdb repl — a functional database (Keller & Lindstrom 1985). .help for help.")
	if *dataDir != "" {
		cur := store.Current()
		fmt.Printf("durable session in %s — recovered version %d (%d tuples in %d relations)\n",
			*dataDir, cur.Version(), cur.TotalTuples(), len(cur.RelationNames()))
	}

	sc := bufio.NewScanner(os.Stdin)
	for prompt(); sc.Scan(); prompt() {
		out, quit := handleLine(store, sc.Text())
		if out != "" {
			fmt.Println(out)
		}
		if quit {
			break
		}
	}
	if err := store.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		os.Exit(1)
	}
}

func prompt() { fmt.Print("fdb> ") }

// handleLine processes one REPL line and returns the output plus whether
// the session should end.
func handleLine(store *funcdb.Store, raw string) (out string, quit bool) {
	line := strings.TrimSpace(raw)
	switch {
	case line == "":
		return "", false
	case line == ".quit" || line == ".exit":
		return "", true
	case line == ".help":
		return helpText, false
	case line == ".stats":
		st := store.Stats()
		return fmt.Sprintf("created %d  shared %d  visited %d  sharing %.1f%%  lanes %d",
			st.Created, st.Shared, st.Visited, 100*st.Fraction, store.Lanes()), false
	case line == ".versions":
		return versionsListing(store), false
	case strings.HasPrefix(line, ".at "):
		return execAt(store, strings.TrimPrefix(line, ".at ")), false
	case strings.HasPrefix(line, ".batch "):
		return execBatch(store, strings.TrimPrefix(line, ".batch ")), false
	case strings.HasPrefix(line, "."):
		return fmt.Sprintf("unknown command %q (.help for help)", line), false
	default:
		resp, err := store.Exec(line)
		if err != nil {
			return "error: " + err.Error(), false
		}
		return resp.String(), false
	}
}

// versionsListing renders the retained version stream: the durable
// archive when the session has one, the in-memory history otherwise.
func versionsListing(store *funcdb.Store) string {
	var b strings.Builder
	if store.Durable() {
		infos, err := store.ArchivedVersions()
		if err != nil {
			// A durable session with an unreadable archive is a problem
			// the user must see, not a reason to show in-memory history.
			return "archive error: " + err.Error()
		}
		for i, v := range infos {
			if i > 0 {
				b.WriteByte('\n')
			}
			marker := " "
			if v.Snapshotted {
				marker = "*"
			}
			fmt.Fprintf(&b, " %s version %d: %-8s %s", marker, v.Seq, v.Kind, v.Detail)
		}
		return b.String()
	}
	for i, v := range store.History().All() {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "  version %d: %d tuples in %d relations",
			v.Version(), v.TotalTuples(), len(v.RelationNames()))
	}
	return b.String()
}

// execBatch submits semicolon-separated queries as one batch: one merge
// arbitration, responses printed in order.
func execBatch(store *funcdb.Store, rest string) string {
	queries := splitQueries(rest)
	if len(queries) == 0 {
		return "usage: .batch <query>; <query>; ..."
	}
	resps, err := store.ExecBatch(queries)
	if err != nil {
		return "error: " + err.Error()
	}
	return joinResponses(resps)
}

// joinResponses renders a batch's responses one per line, in order.
func joinResponses(resps []funcdb.Response) string {
	var b strings.Builder
	for i, r := range resps {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.String())
	}
	return b.String()
}

// splitQueries splits a semicolon-separated query list, dropping empties.
func splitQueries(s string) []string {
	var out []string
	for _, q := range strings.Split(s, ";") {
		if q = strings.TrimSpace(q); q != "" {
			out = append(out, q)
		}
	}
	return out
}

// runScript executes a query file through ExecBatch: one query per line
// (a trailing ';' is tolerated), blank lines and #-comments skipped. The
// whole file is translated and submitted as a single batch.
func runScript(store *funcdb.Store, path string) (string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var queries []string
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line), ";"))
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		queries = append(queries, line)
	}
	if len(queries) == 0 {
		return "", nil
	}
	resps, err := store.ExecBatch(queries)
	if err != nil {
		return "", err
	}
	return joinResponses(resps), nil
}

// execAt runs a read-only query against a retained version: time travel
// over the archive (durable sessions) or the in-memory history.
func execAt(store *funcdb.Store, rest string) string {
	parts := strings.SplitN(strings.TrimSpace(rest), " ", 2)
	if len(parts) != 2 {
		return "usage: .at <version> <query>"
	}
	vn, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return "bad version: " + err.Error()
	}
	db, err := store.VersionAt(vn)
	if err != nil {
		return err.Error()
	}
	tx, err := query.Translate(parts[1])
	if err != nil {
		return err.Error()
	}
	if !tx.IsReadOnly() {
		return "only read-only queries can time-travel (the past is immutable)"
	}
	resp, _, _ := tx.Apply(nil, db, trace.None)
	return fmt.Sprintf("@v%d %s", vn, resp)
}
