// Command fdbrepl is an interactive shell over a functional store: the
// paper's "stream of transaction requests entered from a terminal".
//
// With --data <dir>, the store is durable: every committed write lands in
// the append-only archive under dir, and restarting the repl with the same
// flag recovers the session's database (and its full version stream for
// .at time travel).
//
// With --exec <file>, the repl runs in script mode: the file's queries are
// submitted as one batch (one merge arbitration for the whole script), the
// responses are printed in order, and the process exits.
//
// The repl executes through the same session layer as the public Store
// API and the network server; `.remote <addr>` swaps the backing session
// for a network client session against a running fdbserver — same REPL,
// remote store — and `.local` swaps back.
//
// Every line is a query; dot-commands inspect the system:
//
//	.help                 this text
//	.stats                metrics snapshot (works remotely: a wire Stats frame)
//	.trace [n]            newest published request traces (remote: a wire Traces frame)
//	.versions             retained version stream
//	.at <version> <query> run a read-only query against an old version
//	.batch q1; q2; ...    submit several queries as one batch
//	.remote <addr>        execute against a fdbserver; .local to return
//	.prepare <name> <q>   prepare a '?'-templated query on the remote server
//	.execp <name> args    execute a prepared statement with positional args
//	.quit                 exit
//
// .prepare / .execp drive the wire's server-side prepared statements: the
// template text crosses the wire once (Prepare), the server parses it into
// its statement cache and answers with a dense id, and every .execp ships
// just that id plus the arguments — no text, no re-parse. Arguments are
// bare integers or "quoted strings". Both commands are remote-only; the
// local session has no wire to save parses on.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"funcdb"
	"funcdb/client"
	"funcdb/internal/query"
	"funcdb/internal/reqtrace"
	"funcdb/internal/session"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

const helpText = `queries:
  insert (1, "widget", 3) into R      find 1 in R
  delete 1 from R                     scan R
  count R                             range 1 9 in R
  create R [using list|avl|2-3|paged]
commands:
  .help  .versions  .at <version> <query>  .batch q1; q2; ...
  .remote <addr>  .local  .quit
observability (work remotely too — wire Stats/Traces frames):
  .stats                metrics snapshot: every layer's counters and histograms
  .trace [n]            newest n published request traces as span timelines
                        (needs tracing enabled, e.g. fdbserver --trace)
prepared statements (remote only — text ships once, executions ship id+args):
  .prepare f find ? in R      .execp f 1
  .prepare i insert (?, ?) into R      .execp i 2 "widget"`

// repl holds the shell's execution state: the local store, and — after
// .remote — the network client the queries are routed through instead.
type repl struct {
	store  *funcdb.Store
	remote *client.Client
	addr   string
	stmts  map[string]*client.Stmt // .prepare handles, bound to the current remote
}

// exec routes one query to the backing session (local or remote).
func (r *repl) exec(q string) (funcdb.Response, error) {
	if r.remote != nil {
		return r.remote.Exec(q)
	}
	return r.store.Exec(q)
}

// execBatch routes a batch to the backing session.
func (r *repl) execBatch(qs []string) ([]funcdb.Response, error) {
	if r.remote != nil {
		return r.remote.ExecBatch(qs)
	}
	return r.store.ExecBatch(qs)
}

func main() {
	dataDir := flag.String("data", "", "archive directory: persist the session and recover it on restart")
	snapEvery := flag.Int("snapshot-every", 256, "with --data, snapshot the full version every n writes")
	execFile := flag.String("exec", "", "script mode: run the file's queries as one batch and exit")
	lanes := flag.Int("lanes", 0, "admission lanes the engine shards its merge point into (0 = auto from GOMAXPROCS)")
	remote := flag.String("remote", "", "start connected to a fdbserver instead of the local store")
	traceOn := flag.Bool("trace", false, "trace every local request for .trace (interactive volume: no sampling)")
	flag.Parse()

	opts := []funcdb.Option{funcdb.WithHistory(0), funcdb.WithOrigin("repl")}
	if *traceOn {
		opts = append(opts, funcdb.WithTracing(funcdb.TracingConfig{SampleEvery: 1}))
	}
	if *dataDir != "" {
		opts = append(opts, funcdb.WithDurability(*dataDir, funcdb.SnapshotEvery(*snapEvery)))
	}
	if *lanes > 0 {
		opts = append(opts, funcdb.WithLanes(*lanes))
	}
	store, err := funcdb.Open(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdbrepl:", err)
		os.Exit(1)
	}
	r := &repl{store: store}
	if *remote != "" {
		if out, ok := r.connect(*remote); !ok {
			fmt.Fprintln(os.Stderr, "fdbrepl:", out)
			os.Exit(1)
		}
	}

	if *execFile != "" {
		out, err := runScript(r, *execFile)
		if out != "" {
			fmt.Println(out)
		}
		if err == nil {
			err = r.close()
		} else {
			r.close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdbrepl:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("funcdb repl — a functional database (Keller & Lindstrom 1985). .help for help.")
	if *dataDir != "" {
		cur := store.Current()
		fmt.Printf("durable session in %s — recovered version %d (%d tuples in %d relations)\n",
			*dataDir, cur.Version(), cur.TotalTuples(), len(cur.RelationNames()))
	}
	if r.remote != nil {
		fmt.Printf("remote session: %s\n", r.addr)
	}

	sc := bufio.NewScanner(os.Stdin)
	for prompt(r); sc.Scan(); prompt(r) {
		out, quit := handleLine(r, sc.Text())
		if out != "" {
			fmt.Println(out)
		}
		if quit {
			break
		}
	}
	if err := r.close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		os.Exit(1)
	}
}

func prompt(r *repl) {
	if r.remote != nil {
		fmt.Printf("fdb[%s]> ", r.addr)
		return
	}
	fmt.Print("fdb> ")
}

// close releases the remote session (if any) and the local store.
func (r *repl) close() error {
	if r.remote != nil {
		r.remote.Close()
		r.remote = nil
	}
	return r.store.Close()
}

// connect dials a fdbserver and swaps the backing session to it.
func (r *repl) connect(addr string) (out string, ok bool) {
	c, err := client.Dial(addr, client.WithOrigin("repl"))
	if err != nil {
		return "remote: " + err.Error(), false
	}
	if r.remote != nil {
		r.remote.Close()
	}
	r.remote, r.addr = c, addr
	r.stmts = nil // handles are per-connection
	durable := ""
	if c.Durable() {
		durable = ", durable"
	}
	return fmt.Sprintf("remote session %s (origin %s, %d lanes%s) — .local to return",
		addr, c.Origin(), c.Lanes(), durable), true
}

// handleLine processes one REPL line and returns the output plus whether
// the session should end.
func handleLine(r *repl, raw string) (out string, quit bool) {
	line := strings.TrimSpace(raw)
	switch {
	case line == "":
		return "", false
	case line == ".quit" || line == ".exit":
		return "", true
	case line == ".help":
		return helpText, false
	case strings.HasPrefix(line, ".remote "):
		out, _ := r.connect(strings.TrimSpace(strings.TrimPrefix(line, ".remote ")))
		return out, false
	case line == ".local":
		if r.remote == nil {
			return "already local", false
		}
		r.remote.Close()
		r.remote = nil
		r.stmts = nil
		return "local session", false
	case strings.HasPrefix(line, ".prepare "):
		return prepareStmt(r, strings.TrimPrefix(line, ".prepare ")), false
	case strings.HasPrefix(line, ".execp "):
		return execPrepared(r, strings.TrimPrefix(line, ".execp ")), false
	case line == ".stats":
		// The full metrics snapshot, local or remote: same document, same
		// rendering — remotely it travels as a wire Stats frame.
		if r.remote != nil {
			snap, err := r.remote.Stats()
			if err != nil {
				return "stats: " + err.Error(), false
			}
			return strings.TrimRight(snap.Format(), "\n"), false
		}
		return strings.TrimRight(r.store.MetricsSnapshot().Format(), "\n"), false
	case line == ".trace" || strings.HasPrefix(line, ".trace "):
		return traceListing(r, strings.TrimSpace(strings.TrimPrefix(line, ".trace"))), false
	case line == ".versions":
		if r.remote != nil {
			return "version listing is local-only (use .local)", false
		}
		return versionsListing(r.store), false
	case strings.HasPrefix(line, ".at "):
		if r.remote != nil {
			return "time travel is local-only (use .local)", false
		}
		return execAt(r.store, strings.TrimPrefix(line, ".at ")), false
	case strings.HasPrefix(line, ".batch "):
		return execBatch(r, strings.TrimPrefix(line, ".batch ")), false
	case strings.HasPrefix(line, "."):
		return fmt.Sprintf("unknown command %q (.help for help)", line), false
	default:
		resp, err := r.exec(line)
		if err != nil {
			return "error: " + err.Error(), false
		}
		return resp.String(), false
	}
}

// traceListing renders the newest published request traces as span
// timelines — the store's recorder locally, a wire Traces frame
// remotely. The optional argument caps how many stitched traces print
// (default 5).
func traceListing(r *repl, arg string) string {
	n := 5
	if arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil || v <= 0 {
			return "usage: .trace [n]"
		}
		n = v
	}
	var traces []funcdb.RequestTrace
	if r.remote != nil {
		ts, err := r.remote.Traces()
		if err != nil {
			return "trace: " + err.Error()
		}
		traces = ts
	} else {
		traces = r.store.Traces()
	}
	if len(traces) == 0 {
		return "no traces published (enable tracing: fdbserver --trace, or funcdb.WithTracing)"
	}
	groups := reqtrace.Stitch(traces)
	if len(groups) > n {
		groups = groups[:n]
	}
	var b strings.Builder
	for i, g := range groups {
		if i > 0 {
			b.WriteByte('\n')
		}
		reqtrace.RenderGroup(&b, g)
	}
	return strings.TrimRight(b.String(), "\n")
}

// versionsListing renders the retained version stream: the durable
// archive when the session has one, the in-memory history otherwise.
func versionsListing(store *funcdb.Store) string {
	var b strings.Builder
	if store.Durable() {
		infos, err := store.ArchivedVersions()
		if err != nil {
			// A durable session with an unreadable archive is a problem
			// the user must see, not a reason to show in-memory history.
			return "archive error: " + err.Error()
		}
		for i, v := range infos {
			if i > 0 {
				b.WriteByte('\n')
			}
			marker := " "
			if v.Snapshotted {
				marker = "*"
			}
			fmt.Fprintf(&b, " %s version %d: %-8s %s", marker, v.Seq, v.Kind, v.Detail)
		}
		return b.String()
	}
	for i, v := range store.History().All() {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "  version %d: %d tuples in %d relations",
			v.Version(), v.TotalTuples(), len(v.RelationNames()))
	}
	return b.String()
}

// execBatch submits semicolon-separated queries as one batch: one merge
// arbitration, responses printed in order.
func execBatch(r *repl, rest string) string {
	queries := session.SplitQueries(rest)
	if len(queries) == 0 {
		return "usage: .batch <query>; <query>; ..."
	}
	resps, err := r.execBatch(queries)
	if err != nil {
		return "error: " + err.Error()
	}
	return session.Render(resps)
}

// prepareStmt registers a named prepared statement on the remote server:
// the template parses once server-side and later .execp calls ship only
// the statement id plus arguments.
func prepareStmt(r *repl, rest string) string {
	if r.remote == nil {
		return "prepared statements are remote-only (.remote <addr> first)"
	}
	parts := strings.SplitN(strings.TrimSpace(rest), " ", 2)
	if len(parts) != 2 {
		return "usage: .prepare <name> <query with ? placeholders>"
	}
	name, text := parts[0], strings.TrimSpace(parts[1])
	s := r.remote.Prepare(text)
	n, err := s.NumParams()
	if err != nil {
		return "prepare: " + err.Error()
	}
	if r.stmts == nil {
		r.stmts = make(map[string]*client.Stmt)
	}
	r.stmts[name] = s
	return fmt.Sprintf("prepared %s (%d parameters) — .execp %s <args>", name, n, name)
}

// execPrepared executes a .prepare'd statement with positional arguments:
// bare integers or "quoted strings".
func execPrepared(r *repl, rest string) string {
	if r.remote == nil {
		return "prepared statements are remote-only (.remote <addr> first)"
	}
	fields := splitArgs(strings.TrimSpace(rest))
	if len(fields) == 0 {
		return "usage: .execp <name> [args...]"
	}
	s, ok := r.stmts[fields[0]]
	if !ok {
		return fmt.Sprintf("no prepared statement %q (.prepare %s <query> first)", fields[0], fields[0])
	}
	args := make([]funcdb.Item, 0, len(fields)-1)
	for _, f := range fields[1:] {
		args = append(args, parseArg(f))
	}
	resp, err := s.Exec(args...)
	if err != nil {
		return "error: " + err.Error()
	}
	return resp.String()
}

// splitArgs splits on spaces but keeps "quoted strings" (with embedded
// spaces) as one field, quotes retained for parseArg.
func splitArgs(s string) []string {
	var out []string
	for i := 0; i < len(s); {
		for i < len(s) && s[i] == ' ' {
			i++
		}
		if i == len(s) {
			break
		}
		start := i
		if s[i] == '"' {
			i++
			for i < len(s) && s[i] != '"' {
				i++
			}
			if i < len(s) {
				i++ // closing quote
			}
		} else {
			for i < len(s) && s[i] != ' ' {
				i++
			}
		}
		out = append(out, s[start:i])
	}
	return out
}

// parseArg turns one .execp field into a typed argument: a bare integer
// becomes an int item, anything else (quoted or not) a string item.
func parseArg(f string) funcdb.Item {
	if len(f) >= 2 && f[0] == '"' && f[len(f)-1] == '"' {
		return value.Str(f[1 : len(f)-1])
	}
	if n, err := strconv.ParseInt(f, 10, 64); err == nil {
		return value.Int(n)
	}
	return value.Str(f)
}

// runScript executes a query file as a single batch through the backing
// session (script parsing and rendering live in internal/session, shared
// with every other front end).
func runScript(r *repl, path string) (string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	queries := session.ParseScript(string(src))
	if len(queries) == 0 {
		return "", nil
	}
	resps, err := r.execBatch(queries)
	if err != nil {
		return "", err
	}
	return session.Render(resps), nil
}

// execAt runs a read-only query against a retained version: time travel
// over the archive (durable sessions) or the in-memory history.
func execAt(store *funcdb.Store, rest string) string {
	parts := strings.SplitN(strings.TrimSpace(rest), " ", 2)
	if len(parts) != 2 {
		return "usage: .at <version> <query>"
	}
	vn, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return "bad version: " + err.Error()
	}
	db, err := store.VersionAt(vn)
	if err != nil {
		return err.Error()
	}
	tx, err := query.Translate(parts[1])
	if err != nil {
		return err.Error()
	}
	if !tx.IsReadOnly() {
		return "only read-only queries can time-travel (the past is immutable)"
	}
	resp, _, _ := tx.Apply(nil, db, trace.None)
	return fmt.Sprintf("@v%d %s", vn, resp)
}
