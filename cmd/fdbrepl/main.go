// Command fdbrepl is an interactive shell over a functional store: the
// paper's "stream of transaction requests entered from a terminal".
//
// Every line is a query; dot-commands inspect the system:
//
//	.help                 this text
//	.stats                structure-sharing counters
//	.versions             retained version stream
//	.at <version> <query> run a read-only query against an old version
//	.quit                 exit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"funcdb"
	"funcdb/internal/query"
	"funcdb/internal/trace"
)

const helpText = `queries:
  insert (1, "widget", 3) into R      find 1 in R
  delete 1 from R                     scan R
  count R                             range 1 9 in R
  create R [using list|avl|2-3|paged]
commands:
  .help  .stats  .versions  .at <version> <query>  .quit`

func main() {
	store := funcdb.MustOpen(funcdb.WithHistory(0), funcdb.WithOrigin("repl"))
	fmt.Println("funcdb repl — a functional database (Keller & Lindstrom 1985). .help for help.")

	sc := bufio.NewScanner(os.Stdin)
	for prompt(); sc.Scan(); prompt() {
		out, quit := handleLine(store, sc.Text())
		if out != "" {
			fmt.Println(out)
		}
		if quit {
			return
		}
	}
}

func prompt() { fmt.Print("fdb> ") }

// handleLine processes one REPL line and returns the output plus whether
// the session should end.
func handleLine(store *funcdb.Store, raw string) (out string, quit bool) {
	line := strings.TrimSpace(raw)
	switch {
	case line == "":
		return "", false
	case line == ".quit" || line == ".exit":
		return "", true
	case line == ".help":
		return helpText, false
	case line == ".stats":
		st := store.Stats()
		return fmt.Sprintf("created %d  shared %d  visited %d  sharing %.1f%%",
			st.Created, st.Shared, st.Visited, 100*st.Fraction), false
	case line == ".versions":
		var b strings.Builder
		for i, v := range store.History().All() {
			if i > 0 {
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "  version %d: %d tuples in %d relations",
				v.Version(), v.TotalTuples(), len(v.RelationNames()))
		}
		return b.String(), false
	case strings.HasPrefix(line, ".at "):
		return execAt(store, strings.TrimPrefix(line, ".at ")), false
	case strings.HasPrefix(line, "."):
		return fmt.Sprintf("unknown command %q (.help for help)", line), false
	default:
		resp, err := store.Exec(line)
		if err != nil {
			return "error: " + err.Error(), false
		}
		return resp.String(), false
	}
}

// execAt runs a read-only query against a retained version: time travel.
func execAt(store *funcdb.Store, rest string) string {
	parts := strings.SplitN(strings.TrimSpace(rest), " ", 2)
	if len(parts) != 2 {
		return "usage: .at <version> <query>"
	}
	vn, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return "bad version: " + err.Error()
	}
	db, err := store.History().Version(vn)
	if err != nil {
		return err.Error()
	}
	tx, err := query.Translate(parts[1])
	if err != nil {
		return err.Error()
	}
	if !tx.IsReadOnly() {
		return "only read-only queries can time-travel (the past is immutable)"
	}
	resp, _, _ := tx.Apply(nil, db, trace.None)
	return fmt.Sprintf("@v%d %s", vn, resp)
}
