package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"funcdb"
	"funcdb/internal/server"
)

func newStore(t *testing.T) *funcdb.Store {
	t.Helper()
	return funcdb.MustOpen(funcdb.WithHistory(0), funcdb.WithOrigin("repl"))
}

func newRepl(t *testing.T) *repl {
	t.Helper()
	return &repl{store: newStore(t)}
}

func TestQueryLines(t *testing.T) {
	r := newRepl(t)
	tests := []struct {
		line string
		want string
	}{
		{"create R", "create: created"},
		{`insert (1, "x") into R`, "inserted"},
		{"find 1 in R", "found"},
		{"find 2 in R", "not found"},
		{"count R", "count: 1"},
		{"delete 1 from R", "deleted"},
		{"scan R", "0 tuples"},
	}
	for _, tc := range tests {
		out, quit := handleLine(r, tc.line)
		if quit {
			t.Fatalf("%q quit the session", tc.line)
		}
		if !strings.Contains(out, tc.want) {
			t.Errorf("%q -> %q, want containing %q", tc.line, out, tc.want)
		}
	}
}

func TestDotCommands(t *testing.T) {
	r := newRepl(t)
	handleLine(r, "create R")
	handleLine(r, "insert 1 into R")

	if out, _ := handleLine(r, ".help"); !strings.Contains(out, "queries:") {
		t.Errorf(".help = %q", out)
	}
	if out, _ := handleLine(r, ".stats"); !strings.Contains(out, "created") {
		t.Errorf(".stats = %q", out)
	}
	if out, _ := handleLine(r, ".versions"); !strings.Contains(out, "version 0") || !strings.Contains(out, "version 2") {
		t.Errorf(".versions = %q", out)
	}
	if out, _ := handleLine(r, ".bogus"); !strings.Contains(out, "unknown command") {
		t.Errorf(".bogus = %q", out)
	}
	if out, _ := handleLine(r, ".local"); !strings.Contains(out, "already local") {
		t.Errorf(".local when local = %q", out)
	}
	if _, quit := handleLine(r, ".quit"); !quit {
		t.Error(".quit did not quit")
	}
	if _, quit := handleLine(r, ".exit"); !quit {
		t.Error(".exit did not quit")
	}
	if out, quit := handleLine(r, "   "); out != "" || quit {
		t.Error("blank line misbehaved")
	}
}

func TestTimeTravel(t *testing.T) {
	r := newRepl(t)
	handleLine(r, "create R")
	handleLine(r, "insert 1 into R")
	handleLine(r, "insert 2 into R")
	handleLine(r, "delete 1 from R")

	// Version 3: after both inserts, before the delete.
	out, _ := handleLine(r, ".at 3 count R")
	if !strings.Contains(out, "@v3") || !strings.Contains(out, "2") {
		t.Errorf(".at 3 count R = %q", out)
	}
	// Current version has 1 tuple.
	out, _ = handleLine(r, "count R")
	if !strings.Contains(out, "count: 1") {
		t.Errorf("count = %q", out)
	}
}

func TestTimeTravelErrors(t *testing.T) {
	r := newRepl(t)
	handleLine(r, "create R")
	cases := []struct {
		line string
		want string
	}{
		{".at", "unknown command"},
		{".at 1", "usage:"},
		{".at x count R", "bad version"},
		{".at 99 count R", "not retained"},
		{".at 0 insert 1 into R", "read-only"},
		{".at 0 garbage query", "query:"},
	}
	for _, tc := range cases {
		out, _ := handleLine(r, tc.line)
		if !strings.Contains(out, tc.want) {
			t.Errorf("%q -> %q, want containing %q", tc.line, out, tc.want)
		}
	}
}

// TestDurableSession drives the --data path: a session's writes survive a
// close/reopen, and .versions/.at read the on-disk stream.
func TestDurableSession(t *testing.T) {
	dir := t.TempDir()
	open := func() *repl {
		return &repl{store: funcdb.MustOpen(funcdb.WithHistory(0), funcdb.WithOrigin("repl"),
			funcdb.WithDurability(dir))}
	}

	r := open()
	handleLine(r, "create R")
	handleLine(r, `insert (1, "widget") into R`)
	handleLine(r, "insert 2 into R")
	if err := r.close(); err != nil {
		t.Fatal(err)
	}

	r = open() // restart
	defer r.close()
	if out, _ := handleLine(r, "count R"); !strings.Contains(out, "count: 2") {
		t.Fatalf("recovered count = %q", out)
	}
	out, _ := handleLine(r, ".versions")
	if !strings.Contains(out, "version 0") || !strings.Contains(out, "version 3") {
		t.Fatalf(".versions after restart = %q", out)
	}
	if !strings.Contains(out, `insert (1, "widget") into R`) {
		t.Fatalf(".versions lost query text: %q", out)
	}
	// Time travel into the pre-restart past.
	if out, _ := handleLine(r, ".at 2 count R"); !strings.Contains(out, "@v2") || !strings.Contains(out, "count: 1") {
		t.Fatalf(".at 2 count R = %q", out)
	}
}

func TestErrorsSurface(t *testing.T) {
	r := newRepl(t)
	out, _ := handleLine(r, "find 1 in NOPE")
	if !strings.Contains(out, "no such relation") {
		t.Errorf("unknown relation -> %q", out)
	}
	out, _ = handleLine(r, "complete gibberish")
	if !strings.Contains(out, "error:") {
		t.Errorf("parse error -> %q", out)
	}
}

func TestBatchCommand(t *testing.T) {
	r := newRepl(t)
	out, quit := handleLine(r, `.batch create R; insert (1, "a") into R; insert (2, "b") into R; count R`)
	if quit {
		t.Fatal(".batch quit the session")
	}
	lines := strings.Split(out, "\n")
	if len(lines) != 4 {
		t.Fatalf(".batch printed %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[3], "count: 2") {
		t.Errorf("batch count line = %q", lines[3])
	}
	if out, _ := handleLine(r, ".batch ; ;"); !strings.Contains(out, "usage:") {
		t.Errorf("empty .batch = %q", out)
	}
	if out, _ := handleLine(r, ".batch count R; bogus query"); !strings.Contains(out, "error:") {
		t.Errorf("bad batch = %q", out)
	}
}

func TestRunScript(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "script.fdb")
	script := "# comment\ncreate R\ninsert (1, \"a\") into R;\n\nfind 1 in R\ncount R\n"
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	r := newRepl(t)
	out, err := runScript(r, path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	if len(lines) != 4 {
		t.Fatalf("script printed %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[2], "found") || !strings.Contains(lines[3], "count: 1") {
		t.Errorf("script output wrong: %q", out)
	}

	if _, err := runScript(r, filepath.Join(dir, "missing.fdb")); err == nil {
		t.Error("missing script file not reported")
	}
	bad := filepath.Join(dir, "bad.fdb")
	os.WriteFile(bad, []byte("not a query\n"), 0o644)
	if _, err := runScript(r, bad); err == nil {
		t.Error("bad script query not reported")
	}
	empty := filepath.Join(dir, "empty.fdb")
	os.WriteFile(empty, []byte("# only comments\n\n"), 0o644)
	if out, err := runScript(r, empty); err != nil || out != "" {
		t.Errorf("empty script: %q, %v", out, err)
	}
}

// TestRemoteSession: .remote swaps the backing session for a network
// client against a live fdbserver — same REPL, remote store — and .local
// swaps back.
func TestRemoteSession(t *testing.T) {
	remoteStore := funcdb.MustOpen(funcdb.WithRelations("R"))
	defer remoteStore.Close()
	srv := server.New(remoteStore)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Shutdown()

	r := newRepl(t)
	defer r.close()
	if out, _ := handleLine(r, ".remote "+srv.Addr().String()); !strings.Contains(out, "remote session") {
		t.Fatalf(".remote = %q", out)
	}

	// Queries now land on the server's store, not the local one.
	if out, _ := handleLine(r, `insert (7, "wire") into R`); !strings.Contains(out, "inserted") {
		t.Fatalf("remote insert = %q", out)
	}
	if out, _ := handleLine(r, "find 7 in R"); !strings.Contains(out, "found") {
		t.Fatalf("remote find = %q", out)
	}
	if out, _ := handleLine(r, `.batch insert (8, "b") into R; count R`); !strings.Contains(out, "count: 2") {
		t.Fatalf("remote .batch = %q", out)
	}
	// .stats works remotely: the snapshot travels as a wire Stats frame
	// and reflects the SERVER's store, not the local one.
	if out, _ := handleLine(r, ".stats"); !strings.Contains(out, "admitted") {
		t.Errorf(".stats while remote = %q", out)
	}
	// Local-only commands degrade with a pointer back.
	for _, cmd := range []string{".versions", ".at 0 count R"} {
		if out, _ := handleLine(r, cmd); !strings.Contains(out, "local") {
			t.Errorf("%s while remote = %q", cmd, out)
		}
	}
	remoteStore.Barrier()
	if got := remoteStore.Current().TotalTuples(); got != 2 {
		t.Fatalf("server store has %d tuples, want 2", got)
	}
	if got := r.store.Current().TotalTuples(); got != 0 {
		t.Fatalf("local store touched by remote session: %d tuples", got)
	}

	// Back to the local store.
	if out, _ := handleLine(r, ".local"); !strings.Contains(out, "local session") {
		t.Fatalf(".local = %q", out)
	}
	if out, _ := handleLine(r, "count R"); !strings.Contains(out, "error") && !strings.Contains(out, "no such relation") {
		t.Fatalf("local count after .local = %q", out)
	}

	// A dead address reports and leaves the current session alone.
	if out, _ := handleLine(r, ".remote 127.0.0.1:1"); !strings.Contains(out, "remote:") {
		t.Errorf("dead .remote = %q", out)
	}
}
