package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"funcdb"
)

func newStore(t *testing.T) *funcdb.Store {
	t.Helper()
	return funcdb.MustOpen(funcdb.WithHistory(0), funcdb.WithOrigin("repl"))
}

func TestQueryLines(t *testing.T) {
	store := newStore(t)
	tests := []struct {
		line string
		want string
	}{
		{"create R", "create: created"},
		{`insert (1, "x") into R`, "inserted"},
		{"find 1 in R", "found"},
		{"find 2 in R", "not found"},
		{"count R", "count: 1"},
		{"delete 1 from R", "deleted"},
		{"scan R", "0 tuples"},
	}
	for _, tc := range tests {
		out, quit := handleLine(store, tc.line)
		if quit {
			t.Fatalf("%q quit the session", tc.line)
		}
		if !strings.Contains(out, tc.want) {
			t.Errorf("%q -> %q, want containing %q", tc.line, out, tc.want)
		}
	}
}

func TestDotCommands(t *testing.T) {
	store := newStore(t)
	handleLine(store, "create R")
	handleLine(store, "insert 1 into R")

	if out, _ := handleLine(store, ".help"); !strings.Contains(out, "queries:") {
		t.Errorf(".help = %q", out)
	}
	if out, _ := handleLine(store, ".stats"); !strings.Contains(out, "created") {
		t.Errorf(".stats = %q", out)
	}
	if out, _ := handleLine(store, ".versions"); !strings.Contains(out, "version 0") || !strings.Contains(out, "version 2") {
		t.Errorf(".versions = %q", out)
	}
	if out, _ := handleLine(store, ".bogus"); !strings.Contains(out, "unknown command") {
		t.Errorf(".bogus = %q", out)
	}
	if _, quit := handleLine(store, ".quit"); !quit {
		t.Error(".quit did not quit")
	}
	if _, quit := handleLine(store, ".exit"); !quit {
		t.Error(".exit did not quit")
	}
	if out, quit := handleLine(store, "   "); out != "" || quit {
		t.Error("blank line misbehaved")
	}
}

func TestTimeTravel(t *testing.T) {
	store := newStore(t)
	handleLine(store, "create R")
	handleLine(store, "insert 1 into R")
	handleLine(store, "insert 2 into R")
	handleLine(store, "delete 1 from R")

	// Version 3: after both inserts, before the delete.
	out, _ := handleLine(store, ".at 3 count R")
	if !strings.Contains(out, "@v3") || !strings.Contains(out, "2") {
		t.Errorf(".at 3 count R = %q", out)
	}
	// Current version has 1 tuple.
	out, _ = handleLine(store, "count R")
	if !strings.Contains(out, "count: 1") {
		t.Errorf("count = %q", out)
	}
}

func TestTimeTravelErrors(t *testing.T) {
	store := newStore(t)
	handleLine(store, "create R")
	cases := []struct {
		line string
		want string
	}{
		{".at", "unknown command"},
		{".at 1", "usage:"},
		{".at x count R", "bad version"},
		{".at 99 count R", "not retained"},
		{".at 0 insert 1 into R", "read-only"},
		{".at 0 garbage query", "query:"},
	}
	for _, tc := range cases {
		out, _ := handleLine(store, tc.line)
		if !strings.Contains(out, tc.want) {
			t.Errorf("%q -> %q, want containing %q", tc.line, out, tc.want)
		}
	}
}

// TestDurableSession drives the --data path: a session's writes survive a
// close/reopen, and .versions/.at read the on-disk stream.
func TestDurableSession(t *testing.T) {
	dir := t.TempDir()
	open := func() *funcdb.Store {
		return funcdb.MustOpen(funcdb.WithHistory(0), funcdb.WithOrigin("repl"),
			funcdb.WithDurability(dir))
	}

	store := open()
	handleLine(store, "create R")
	handleLine(store, `insert (1, "widget") into R`)
	handleLine(store, "insert 2 into R")
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store = open() // restart
	defer store.Close()
	if out, _ := handleLine(store, "count R"); !strings.Contains(out, "count: 2") {
		t.Fatalf("recovered count = %q", out)
	}
	out, _ := handleLine(store, ".versions")
	if !strings.Contains(out, "version 0") || !strings.Contains(out, "version 3") {
		t.Fatalf(".versions after restart = %q", out)
	}
	if !strings.Contains(out, `insert (1, "widget") into R`) {
		t.Fatalf(".versions lost query text: %q", out)
	}
	// Time travel into the pre-restart past.
	if out, _ := handleLine(store, ".at 2 count R"); !strings.Contains(out, "@v2") || !strings.Contains(out, "count: 1") {
		t.Fatalf(".at 2 count R = %q", out)
	}
}

func TestErrorsSurface(t *testing.T) {
	store := newStore(t)
	out, _ := handleLine(store, "find 1 in NOPE")
	if !strings.Contains(out, "no such relation") {
		t.Errorf("unknown relation -> %q", out)
	}
	out, _ = handleLine(store, "complete gibberish")
	if !strings.Contains(out, "error:") {
		t.Errorf("parse error -> %q", out)
	}
}

func TestBatchCommand(t *testing.T) {
	store := newStore(t)
	out, quit := handleLine(store, `.batch create R; insert (1, "a") into R; insert (2, "b") into R; count R`)
	if quit {
		t.Fatal(".batch quit the session")
	}
	lines := strings.Split(out, "\n")
	if len(lines) != 4 {
		t.Fatalf(".batch printed %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[3], "count: 2") {
		t.Errorf("batch count line = %q", lines[3])
	}
	if out, _ := handleLine(store, ".batch ; ;"); !strings.Contains(out, "usage:") {
		t.Errorf("empty .batch = %q", out)
	}
	if out, _ := handleLine(store, ".batch count R; bogus query"); !strings.Contains(out, "error:") {
		t.Errorf("bad batch = %q", out)
	}
}

func TestRunScript(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "script.fdb")
	script := "# comment\ncreate R\ninsert (1, \"a\") into R;\n\nfind 1 in R\ncount R\n"
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	store := newStore(t)
	out, err := runScript(store, path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	if len(lines) != 4 {
		t.Fatalf("script printed %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[2], "found") || !strings.Contains(lines[3], "count: 1") {
		t.Errorf("script output wrong: %q", out)
	}

	if _, err := runScript(store, filepath.Join(dir, "missing.fdb")); err == nil {
		t.Error("missing script file not reported")
	}
	bad := filepath.Join(dir, "bad.fdb")
	os.WriteFile(bad, []byte("not a query\n"), 0o644)
	if _, err := runScript(store, bad); err == nil {
		t.Error("bad script query not reported")
	}
	empty := filepath.Join(dir, "empty.fdb")
	os.WriteFile(empty, []byte("# only comments\n\n"), 0o644)
	if out, err := runScript(store, empty); err != nil || out != "" {
		t.Errorf("empty script: %q, %v", out, err)
	}
}
