package main

import (
	"strings"
	"testing"

	"funcdb"
)

func newStore(t *testing.T) *funcdb.Store {
	t.Helper()
	return funcdb.MustOpen(funcdb.WithHistory(0), funcdb.WithOrigin("repl"))
}

func TestQueryLines(t *testing.T) {
	store := newStore(t)
	tests := []struct {
		line string
		want string
	}{
		{"create R", "create: created"},
		{`insert (1, "x") into R`, "inserted"},
		{"find 1 in R", "found"},
		{"find 2 in R", "not found"},
		{"count R", "count: 1"},
		{"delete 1 from R", "deleted"},
		{"scan R", "0 tuples"},
	}
	for _, tc := range tests {
		out, quit := handleLine(store, tc.line)
		if quit {
			t.Fatalf("%q quit the session", tc.line)
		}
		if !strings.Contains(out, tc.want) {
			t.Errorf("%q -> %q, want containing %q", tc.line, out, tc.want)
		}
	}
}

func TestDotCommands(t *testing.T) {
	store := newStore(t)
	handleLine(store, "create R")
	handleLine(store, "insert 1 into R")

	if out, _ := handleLine(store, ".help"); !strings.Contains(out, "queries:") {
		t.Errorf(".help = %q", out)
	}
	if out, _ := handleLine(store, ".stats"); !strings.Contains(out, "created") {
		t.Errorf(".stats = %q", out)
	}
	if out, _ := handleLine(store, ".versions"); !strings.Contains(out, "version 0") || !strings.Contains(out, "version 2") {
		t.Errorf(".versions = %q", out)
	}
	if out, _ := handleLine(store, ".bogus"); !strings.Contains(out, "unknown command") {
		t.Errorf(".bogus = %q", out)
	}
	if _, quit := handleLine(store, ".quit"); !quit {
		t.Error(".quit did not quit")
	}
	if _, quit := handleLine(store, ".exit"); !quit {
		t.Error(".exit did not quit")
	}
	if out, quit := handleLine(store, "   "); out != "" || quit {
		t.Error("blank line misbehaved")
	}
}

func TestTimeTravel(t *testing.T) {
	store := newStore(t)
	handleLine(store, "create R")
	handleLine(store, "insert 1 into R")
	handleLine(store, "insert 2 into R")
	handleLine(store, "delete 1 from R")

	// Version 3: after both inserts, before the delete.
	out, _ := handleLine(store, ".at 3 count R")
	if !strings.Contains(out, "@v3") || !strings.Contains(out, "2") {
		t.Errorf(".at 3 count R = %q", out)
	}
	// Current version has 1 tuple.
	out, _ = handleLine(store, "count R")
	if !strings.Contains(out, "count: 1") {
		t.Errorf("count = %q", out)
	}
}

func TestTimeTravelErrors(t *testing.T) {
	store := newStore(t)
	handleLine(store, "create R")
	cases := []struct {
		line string
		want string
	}{
		{".at", "unknown command"},
		{".at 1", "usage:"},
		{".at x count R", "bad version"},
		{".at 99 count R", "not retained"},
		{".at 0 insert 1 into R", "read-only"},
		{".at 0 garbage query", "query:"},
	}
	for _, tc := range cases {
		out, _ := handleLine(store, tc.line)
		if !strings.Contains(out, tc.want) {
			t.Errorf("%q -> %q, want containing %q", tc.line, out, tc.want)
		}
	}
}

// TestDurableSession drives the --data path: a session's writes survive a
// close/reopen, and .versions/.at read the on-disk stream.
func TestDurableSession(t *testing.T) {
	dir := t.TempDir()
	open := func() *funcdb.Store {
		return funcdb.MustOpen(funcdb.WithHistory(0), funcdb.WithOrigin("repl"),
			funcdb.WithDurability(dir))
	}

	store := open()
	handleLine(store, "create R")
	handleLine(store, `insert (1, "widget") into R`)
	handleLine(store, "insert 2 into R")
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store = open() // restart
	defer store.Close()
	if out, _ := handleLine(store, "count R"); !strings.Contains(out, "count: 2") {
		t.Fatalf("recovered count = %q", out)
	}
	out, _ := handleLine(store, ".versions")
	if !strings.Contains(out, "version 0") || !strings.Contains(out, "version 3") {
		t.Fatalf(".versions after restart = %q", out)
	}
	if !strings.Contains(out, `insert (1, "widget") into R`) {
		t.Fatalf(".versions lost query text: %q", out)
	}
	// Time travel into the pre-restart past.
	if out, _ := handleLine(store, ".at 2 count R"); !strings.Contains(out, "@v2") || !strings.Contains(out, "count: 1") {
		t.Fatalf(".at 2 count R = %q", out)
	}
}

func TestErrorsSurface(t *testing.T) {
	store := newStore(t)
	out, _ := handleLine(store, "find 1 in NOPE")
	if !strings.Contains(out, "no such relation") {
		t.Errorf("unknown relation -> %q", out)
	}
	out, _ = handleLine(store, "complete gibberish")
	if !strings.Contains(out, "error:") {
		t.Errorf("parse error -> %q", out)
	}
}
