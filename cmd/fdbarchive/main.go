// Command fdbarchive operates on durable archive directories written by
// funcdb.WithDurability: the on-disk form of the paper's Section 3.3
// "complete archives".
//
//	fdbarchive inspect <dir>    file layout, record counts, integrity
//	fdbarchive versions <dir>   the durable version stream, oldest-first
//	fdbarchive compact <dir>    drop snapshots/logs behind the newest snapshot
//
// compact must not run while a store has the archive open.
package main

import (
	"fmt"
	"io"
	"os"

	"funcdb/internal/archive"
)

const usage = `usage: fdbarchive <command> <dir>

commands:
  inspect   file layout, record counts and integrity of an archive
  versions  list the durable version stream, oldest-first
  compact   remove snapshots and log segments behind the newest snapshot`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fdbarchive:", err)
		os.Exit(1)
	}
}

// run dispatches one subcommand, writing its report to w.
func run(args []string, w io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("%s", usage)
	}
	cmd, dir := args[0], args[1]
	switch cmd {
	case "inspect":
		return inspect(dir, w)
	case "versions":
		return versions(dir, w)
	case "compact":
		return compact(dir, w)
	default:
		return fmt.Errorf("unknown command %q\n%s", cmd, usage)
	}
}

// inspect summarizes the archive: its files, the recoverable version, and
// whether the stream decodes cleanly end to end.
func inspect(dir string, w io.Writer) error {
	summary, err := archive.Inspect(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "archive %s\n", dir)
	for _, f := range summary.Files {
		status := "ok"
		if f.Err != "" {
			status = f.Err
		}
		fmt.Fprintf(w, "  %-28s %8d bytes  %5d records  %s\n", f.Name, f.Bytes, f.Records, status)
	}
	fmt.Fprintf(w, "last durable version: %d\n", summary.LastSeq)
	if summary.Torn {
		fmt.Fprintln(w, "note: torn final record (crash mid-append); recovery drops it")
	}
	return nil
}

// versions prints the durable version stream.
func versions(dir string, w io.Writer) error {
	infos, err := archive.Versions(dir)
	if err != nil {
		return err
	}
	for _, v := range infos {
		marker := " "
		if v.Snapshotted {
			marker = "*"
		}
		fmt.Fprintf(w, "%s version %d: %-8s %s\n", marker, v.Seq, v.Kind, v.Detail)
	}
	return nil
}

// compact removes obsolete segments and reports what was dropped.
func compact(dir string, w io.Writer) error {
	removed, err := archive.Compact(dir)
	if err != nil {
		return err
	}
	if len(removed) == 0 {
		fmt.Fprintln(w, "nothing to compact")
		return nil
	}
	for _, name := range removed {
		fmt.Fprintf(w, "removed %s\n", name)
	}
	return nil
}
