package main

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"funcdb"
)

// buildArchive writes a small durable store and returns its directory.
func buildArchive(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "data")
	store, err := funcdb.Open(
		funcdb.WithDurability(dir, funcdb.SnapshotEvery(3)),
		funcdb.WithRelations("R"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if _, err := store.Exec(fmt.Sprintf("insert (%d, \"v%d\") into R", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestInspectCommand(t *testing.T) {
	dir := buildArchive(t)
	out, err := runCmd(t, "inspect", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "last durable version: 8") {
		t.Fatalf("inspect output:\n%s", out)
	}
	if !strings.Contains(out, "snap-") || !strings.Contains(out, "log-") {
		t.Fatalf("inspect output lists no files:\n%s", out)
	}
}

func TestVersionsCommand(t *testing.T) {
	dir := buildArchive(t)
	out, err := runCmd(t, "versions", dir)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq <= 8; seq++ {
		if !strings.Contains(out, fmt.Sprintf("version %d:", seq)) {
			t.Fatalf("versions output misses %d:\n%s", seq, out)
		}
	}
	if !strings.Contains(out, `insert (3, "v3") into R`) {
		t.Fatalf("versions output lost query text:\n%s", out)
	}
	// Snapshotted versions carry the * marker.
	if !strings.Contains(out, "* version 6") {
		t.Fatalf("versions output misses snapshot marker:\n%s", out)
	}
}

func TestCompactCommand(t *testing.T) {
	dir := buildArchive(t)
	out, err := runCmd(t, "compact", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "removed") {
		t.Fatalf("compact output:\n%s", out)
	}
	// Idempotent: a second compact has nothing to do.
	out, err = runCmd(t, "compact", dir)
	if err != nil || !strings.Contains(out, "nothing to compact") {
		t.Fatalf("second compact: %v\n%s", err, out)
	}
	// The archive still recovers.
	store, err := funcdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Current().TotalTuples() != 8 {
		t.Fatalf("post-compact tuples = %d", store.Current().TotalTuples())
	}
}

func TestUsageErrors(t *testing.T) {
	if _, err := runCmd(t); err == nil || !strings.Contains(err.Error(), "usage:") {
		t.Errorf("no args: %v", err)
	}
	if _, err := runCmd(t, "bogus", "dir"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Errorf("bad command: %v", err)
	}
	if _, err := runCmd(t, "versions", t.TempDir()); err == nil {
		t.Error("versions on empty dir succeeded")
	}
}
