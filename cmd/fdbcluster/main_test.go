package main

import (
	"fmt"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"funcdb/client"
)

// demo runs the netsim demo with discarded output and no signals.
func demo(t *testing.T, args ...string) error {
	t.Helper()
	var out strings.Builder
	return run(args, &out, nil, nil)
}

func TestRunHypercube(t *testing.T) {
	if err := demo(t, "-hypercube", "2", "-clients", "2", "-ops", "10"); err != nil {
		t.Error(err)
	}
}

func TestRunFullyConnected(t *testing.T) {
	if err := demo(t, "-hypercube", "0", "-clients", "3", "-ops", "5"); err != nil {
		t.Error(err)
	}
}

func TestRunPrimaryCopyModel(t *testing.T) {
	if err := demo(t, "-model", "primarycopy", "-hypercube", "2", "-clients", "2", "-ops", "10"); err != nil {
		t.Error(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := demo(t, "-nope"); err == nil {
		t.Error("bad flag accepted")
	}
	if err := demo(t, "-model", "quorum"); err == nil {
		t.Error("unknown model accepted")
	}
}

// TestRealNetworkMode boots a 3-node TCP cluster through the command's
// run loop (reserved loopback ports), drives a cluster client through
// it, and drains every node cleanly.
func TestRealNetworkMode(t *testing.T) {
	// Reserve three ports for the join list.
	addrs := make([]string, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	join := strings.Join(addrs, ",")

	type nodeProc struct {
		sig  chan os.Signal
		done chan error
		out  *strings.Builder
	}
	nodes := make([]*nodeProc, 3)
	for i := range nodes {
		np := &nodeProc{sig: make(chan os.Signal, 1), done: make(chan error, 1), out: &strings.Builder{}}
		nodes[i] = np
		ready := make(chan net.Addr, 1)
		args := []string{
			"--listen", addrs[i],
			"--join", join,
			"--data", t.TempDir(),
			"--relations", "R,S,T,U,V,W",
		}
		go func() { np.done <- run(args, np.out, np.sig, func(a net.Addr) { ready <- a }) }()
		select {
		case <-ready:
		case err := <-np.done:
			t.Fatalf("node %d exited before ready: %v\n%s", i, err, np.out.String())
		case <-time.After(10 * time.Second):
			t.Fatalf("node %d never came up", i)
		}
	}

	cc, err := client.DialCluster(addrs, client.WithClusterOrigin("c0"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		rel := []string{"R", "S", "W"}[i%3]
		resp, err := cc.Exec(fmt.Sprintf("insert (%d, \"v\") into %s", i, rel))
		if err != nil || resp.Err != nil {
			t.Fatalf("insert %d: %v / %v", i, err, resp.Err)
		}
	}
	if resp, err := cc.Exec("count R"); err != nil || resp.Count != 10 {
		t.Fatalf("count R: %+v, %v", resp, err)
	}
	cc.Close()

	for i, np := range nodes {
		np.sig <- os.Interrupt
		select {
		case err := <-np.done:
			if err != nil {
				t.Fatalf("node %d drain failed: %v\n%s", i, err, np.out.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("node %d did not drain", i)
		}
		if !strings.Contains(np.out.String(), "draining") {
			t.Errorf("node %d drain log missing:\n%s", i, np.out.String())
		}
	}
}
