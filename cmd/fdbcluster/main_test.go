package main

import "testing"

func TestRunHypercube(t *testing.T) {
	if err := run([]string{"-hypercube", "2", "-clients", "2", "-ops", "10"}); err != nil {
		t.Error(err)
	}
}

func TestRunFullyConnected(t *testing.T) {
	if err := run([]string{"-hypercube", "0", "-clients", "3", "-ops", "5"}); err != nil {
		t.Error(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
