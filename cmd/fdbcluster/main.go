// Command fdbcluster runs a primary-site cluster demo: N sites on a
// hypercube (or fully connected), C concurrent clients submitting a seeded
// query mix, with medium statistics and a final consistency check.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"funcdb"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fdbcluster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fdbcluster", flag.ContinueOnError)
	dim := fs.Int("hypercube", 3, "hypercube dimension (sites = 2^dim); 0 = 4 fully connected sites")
	clients := fs.Int("clients", 4, "concurrent clients")
	ops := fs.Int("ops", 100, "operations per client")
	seed := fs.Int64("seed", 1, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sites := 4
	cfg := funcdb.ClusterConfig{
		Databases: map[string]*funcdb.Database{
			"main": funcdb.MustOpen(funcdb.WithRelations("R", "S", "T")).Current(),
		},
	}
	if *dim > 0 {
		sites = 1 << *dim
		cfg.Hypercube = *dim
	}
	cfg.Sites = sites

	cluster, err := funcdb.OpenCluster(cfg)
	if err != nil {
		return err
	}
	defer cluster.Shutdown()

	primary, _ := cluster.PrimaryOf("main")
	fmt.Printf("cluster: %d sites, primary for \"main\" at site %d\n", sites, primary)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, *clients)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := cluster.NewClient(funcdb.SiteID((c+1)%sites), fmt.Sprintf("client%d", c))
			if err != nil {
				errs <- err
				return
			}
			r := rand.New(rand.NewSource(*seed + int64(c)))
			rels := []string{"R", "S", "T"}
			for i := 0; i < *ops; i++ {
				rel := rels[r.Intn(len(rels))]
				k := funcdb.Int(int64(c*1_000_000 + i)).String()
				var q string
				if r.Intn(3) == 0 {
					q = "find " + k + " in " + rel
				} else {
					q = "insert " + k + " into " + rel
				}
				if resp := client.Exec("main", q); resp.Err != nil {
					errs <- fmt.Errorf("client %d: %s: %w", c, q, resp.Err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	elapsed := time.Since(start)

	final, err := cluster.Current("main")
	if err != nil {
		return err
	}
	msgs, hops := cluster.Network().Stats()
	total := *clients * *ops
	fmt.Printf("%d operations from %d clients in %v (%.0f ops/s)\n",
		total, *clients, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("final database: %d tuples across %v\n", final.TotalTuples(), final.RelationNames())
	fmt.Printf("medium: %d messages, %d hops (avg %.2f hops/message)\n",
		msgs, hops, float64(hops)/float64(msgs))
	return nil
}
