// Command fdbcluster runs funcdb's distributed forms.
//
// Demo mode (default) simulates the paper's two distribution models on
// the in-memory netsim medium: N sites on a hypercube (or fully
// connected), C concurrent clients submitting a seeded query mix, with
// medium statistics and a final consistency check. --model picks the
// model: "primarysite" (every transaction coordinates through one
// primary site, Section 3.1) or "primarycopy" (each relation is its own
// primary copy; transactions go straight to the owner).
//
// Real-network mode (--listen) runs ONE node of a TCP cluster: give
// every node the same --join list of advertised addresses, a unique
// --id (inferred from --listen when omitted), and its own --data
// directory. Placement is the lane hash over the join list — no
// coordinator to start first — so the nodes can boot in any order;
// replication streams each peer's archive log over the wire. Point
// clients at any node (funcdb/client DialCluster chases placement;
// plain Dial is transparently forwarded). SIGTERM drains: every acked
// commit is on disk before exit.
//
//	fdbcluster --listen :4151 --join :4151,:4152,:4153 --data /data/n0 --relations R,S,T
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"funcdb"
	"funcdb/internal/cluster"
	"funcdb/internal/primarycopy"
	"funcdb/internal/server"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	if err := run(os.Args[1:], os.Stdout, sig, nil); err != nil {
		fmt.Fprintln(os.Stderr, "fdbcluster:", err)
		os.Exit(1)
	}
}

// run is main with its dependencies explicit so tests can drive it; sig
// and onReady matter only in --listen mode.
func run(args []string, stdout io.Writer, sig <-chan os.Signal, onReady func(net.Addr)) error {
	fs := flag.NewFlagSet("fdbcluster", flag.ContinueOnError)
	// Demo (netsim) flags.
	model := fs.String("model", "primarysite", "netsim demo model: primarysite or primarycopy")
	dim := fs.Int("hypercube", 3, "hypercube dimension (sites = 2^dim); 0 = 4 fully connected sites")
	clients := fs.Int("clients", 4, "concurrent clients")
	ops := fs.Int("ops", 100, "operations per client")
	seed := fs.Int64("seed", 1, "workload seed")
	// Real-network node flags.
	listen := fs.String("listen", "", "real-network mode: TCP address this node serves on")
	join := fs.String("join", "", "real-network mode: comma-separated advertised addresses of ALL nodes, cluster order")
	id := fs.Int("id", -1, "real-network mode: this node's index in --join (default: match --listen)")
	dataDir := fs.String("data", "", "real-network mode: this node's archive directory (required)")
	relations := fs.String("relations", "R,S,T", "real-network mode: cluster-wide schema")
	lanes := fs.Int("lanes", 0, "real-network mode: admission lanes (0 = auto)")
	noReplicate := fs.Bool("no-replicate", false, "real-network mode: disable log-shipped replicas")
	debugAddr := fs.String("debug-addr", "", "real-network mode: HTTP address for /debug/stats, /debug/vars and /debug/pprof")
	failover := fs.Bool("failover", false, "real-network mode: enable leases, promotion, and epoch fencing (needs replication; enable on every node)")
	heartbeat := fs.Duration("heartbeat", 0, "real-network mode: heartbeat interval with --failover (0 = default)")
	lease := fs.Duration("lease", 0, "real-network mode: peer lease with --failover (0 = 4x heartbeat)")
	traceOn := fs.Bool("trace", false, "real-network mode: record per-request span timelines; sampled contexts propagate on forwards and the replication stream")
	traceSample := fs.Int("trace-sample", 0, "with --trace, head-sample 1 in n requests (0 = default 1024)")
	traceSlow := fs.Duration("trace-slow", 0, "with --trace, always keep requests at or over this duration (0 = default 10ms, negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listen != "" {
		nf := nodeFlags{
			listen: *listen, join: *join, id: *id, dataDir: *dataDir,
			relations: *relations, lanes: *lanes, noReplicate: *noReplicate,
			debugAddr: *debugAddr,
			failover:  *failover, heartbeat: *heartbeat, lease: *lease,
		}
		if *traceOn {
			nf.tracing = &funcdb.TracingConfig{SampleEvery: *traceSample, SlowThreshold: *traceSlow}
		}
		return runNode(nf, stdout, sig, onReady)
	}
	return runDemo(*model, *dim, *clients, *ops, *seed, stdout)
}

// nodeFlags carries the real-network mode configuration.
type nodeFlags struct {
	listen, join, dataDir, relations string
	id, lanes                        int
	noReplicate                      bool
	debugAddr                        string
	failover                         bool
	heartbeat, lease                 time.Duration
	tracing                          *funcdb.TracingConfig
}

// runNode serves one real-network cluster node until a signal drains it.
func runNode(nf nodeFlags, stdout io.Writer, sig <-chan os.Signal, onReady func(net.Addr)) error {
	nodes := splitComma(nf.join)
	if len(nodes) == 0 {
		return fmt.Errorf("--listen needs --join with every node's advertised address")
	}
	if nf.dataDir == "" {
		return fmt.Errorf("--listen needs --data (the archive is the replication stream)")
	}
	id := nf.id
	if id < 0 {
		for i, addr := range nodes {
			if addr == nf.listen {
				id = i
			}
		}
		if id < 0 {
			return fmt.Errorf("--listen %s not in --join %v; give --id explicitly", nf.listen, nodes)
		}
	}
	ncfg := funcdb.ClusterNodeConfig{
		ID:                 id,
		Nodes:              nodes,
		Listen:             nf.listen,
		Dir:                nf.dataDir,
		Relations:          splitComma(nf.relations),
		Lanes:              nf.lanes,
		DisableReplication: nf.noReplicate,
		Durability:         []funcdb.DurabilityOption{funcdb.GroupCommit(2 * time.Millisecond)},
		Tracing:            nf.tracing,
	}
	if nf.failover {
		if nf.noReplicate {
			return fmt.Errorf("--failover needs replication (drop --no-replicate)")
		}
		ncfg.Failover = &cluster.FailoverConfig{Heartbeat: nf.heartbeat, Lease: nf.lease}
	}
	node, err := funcdb.OpenClusterNode(ncfg)
	if err != nil {
		return err
	}
	owned := 0
	for _, rel := range splitComma(nf.relations) {
		if _, self := node.Owner(rel); self {
			owned++
		}
	}
	fmt.Fprintf(stdout, "fdbcluster: node %d/%d on %s (primary for %d of %d relations%s)\n",
		id, len(nodes), node.Addr(), owned, len(splitComma(nf.relations)),
		map[bool]string{true: "", false: ", replicating peers"}[nf.noReplicate])
	if nf.debugAddr != "" {
		ln, err := net.Listen("tcp", nf.debugAddr)
		if err != nil {
			node.Shutdown()
			return fmt.Errorf("debug listener: %w", err)
		}
		defer ln.Close()
		go http.Serve(ln, server.NewDebugMux(
			func() any { return node.MetricsSnapshot() },
			func() []funcdb.RequestTrace { return node.Traces() },
		))
		fmt.Fprintf(stdout, "fdbcluster: debug endpoints on http://%s/debug/\n", ln.Addr())
	}
	if onReady != nil {
		onReady(node.Addr())
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- node.Serve() }()
	select {
	case s := <-sig:
		fmt.Fprintf(stdout, "fdbcluster: %v — draining\n", s)
	case err := <-serveDone:
		node.Shutdown()
		return err
	}
	if err := node.Shutdown(); err != nil {
		return err
	}
	<-serveDone
	fmt.Fprintln(stdout, "fdbcluster: drained, store closed")
	return nil
}

// demoExec is the surface both netsim models expose to the demo driver.
type demoExec func(q string) funcdb.Response

// runDemo simulates one of the paper's models on the netsim medium.
func runDemo(model string, dim, clients, ops int, seed int64, stdout io.Writer) error {
	sites := 4
	if dim > 0 {
		sites = 1 << dim
	}
	rels := []string{"R", "S", "T"}
	initial := funcdb.MustOpen(funcdb.WithRelations(rels...)).Current()

	var (
		newClient func(site int, origin string) (demoExec, error)
		current   func() (*funcdb.Database, error)
		stats     func() (msgs, hops int64)
		shutdown  func()
	)
	switch model {
	case "primarysite":
		cfg := funcdb.ClusterConfig{
			Sites:     sites,
			Databases: map[string]*funcdb.Database{"main": initial},
		}
		if dim > 0 {
			cfg.Hypercube = dim
		}
		cluster, err := funcdb.OpenCluster(cfg)
		if err != nil {
			return err
		}
		primary, _ := cluster.PrimaryOf("main")
		fmt.Fprintf(stdout, "primary-site cluster: %d sites, primary for \"main\" at site %d\n", sites, primary)
		newClient = func(site int, origin string) (demoExec, error) {
			cl, err := cluster.NewClient(funcdb.SiteID(site), origin)
			if err != nil {
				return nil, err
			}
			return func(q string) funcdb.Response { return cl.Exec("main", q) }, nil
		}
		current = func() (*funcdb.Database, error) { return cluster.Current("main") }
		stats = func() (int64, int64) { m, h := cluster.Network().Stats(); return int64(m), int64(h) }
		shutdown = cluster.Shutdown

	case "primarycopy":
		cfg := primarycopy.Config{Sites: sites, Initial: initial}
		cluster, err := primarycopy.New(cfg)
		if err != nil {
			return err
		}
		for _, rel := range rels {
			owner, _ := cluster.OwnerOf(rel)
			fmt.Fprintf(stdout, "primary-copy cluster: %q owned by site %d\n", rel, owner)
		}
		newClient = func(site int, origin string) (demoExec, error) {
			cl, err := cluster.NewClient(funcdb.SiteID(site), origin)
			if err != nil {
				return nil, err
			}
			return func(q string) funcdb.Response { return cl.Exec(q) }, nil
		}
		current = func() (*funcdb.Database, error) { return cluster.Current(), nil }
		stats = func() (int64, int64) { m, h := cluster.Network().Stats(); return int64(m), int64(h) }
		shutdown = cluster.Shutdown

	default:
		return fmt.Errorf("unknown --model %q (primarysite or primarycopy)", model)
	}
	defer shutdown()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			exec, err := newClient((c+1)%sites, fmt.Sprintf("client%d", c))
			if err != nil {
				errs <- err
				return
			}
			r := rand.New(rand.NewSource(seed + int64(c)))
			for i := 0; i < ops; i++ {
				rel := rels[r.Intn(len(rels))]
				k := funcdb.Int(int64(c*1_000_000 + i)).String()
				var q string
				if r.Intn(3) == 0 {
					q = "find " + k + " in " + rel
				} else {
					q = "insert " + k + " into " + rel
				}
				if resp := exec(q); resp.Err != nil {
					errs <- fmt.Errorf("client %d: %s: %w", c, q, resp.Err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	elapsed := time.Since(start)

	final, err := current()
	if err != nil {
		return err
	}
	msgs, hops := stats()
	total := clients * ops
	fmt.Fprintf(stdout, "%d operations from %d clients in %v (%.0f ops/s)\n",
		total, clients, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Fprintf(stdout, "final database: %d tuples across %v\n", final.TotalTuples(), final.RelationNames())
	fmt.Fprintf(stdout, "medium: %d messages, %d hops (avg %.2f hops/message)\n",
		msgs, hops, float64(hops)/float64(msgs))
	return nil
}

// splitComma splits a comma-separated list, dropping empties.
func splitComma(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}
