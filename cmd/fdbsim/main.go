// Command fdbsim regenerates every table and figure of Keller & Lindstrom
// 1985 from the funcdb implementation.
//
// Usage:
//
//	fdbsim [-seed N] [-table 1|2|3|all] [-figure 2.1|2.2|2.3|all] [-ablations]
//
// With no flags it prints everything: Tables I-III, Figures 2-1/2-2/2-3 and
// the ablation studies.
package main

import (
	"flag"
	"fmt"
	"os"

	"funcdb/internal/experiments"
	"funcdb/internal/sched"
	"funcdb/internal/topo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fdbsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fdbsim", flag.ContinueOnError)
	seed := fs.Int64("seed", experiments.DefaultSeed, "workload seed (the published tables use the default)")
	table := fs.String("table", "", "reproduce one table: 1, 2, 3 or all")
	figure := fs.String("figure", "", "reproduce one figure: 2.1, 2.2, 2.3, 3.1 or all")
	ablations := fs.Bool("ablations", false, "run the ablation studies")
	compare := fs.Bool("compare", false, "print tables side by side with the paper's published values")
	dot := fs.Bool("dot", false, "emit DOT for figure 2.1 instead of the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}

	all := *table == "" && *figure == "" && !*ablations
	if all {
		*table, *figure, *ablations = "all", "all", true
	}

	if *table == "1" || *table == "all" {
		grid, err := experiments.TableI(*seed)
		if err != nil {
			return err
		}
		if *compare {
			fmt.Println(experiments.FormatComparisonI(grid))
		} else {
			fmt.Println(experiments.FormatPlyGrid(grid))
		}
	}
	if *table == "2" || *table == "all" {
		grid, err := experiments.TableII(*seed)
		if err != nil {
			return err
		}
		if *compare {
			fmt.Println(experiments.FormatComparisonSpeedup(grid, experiments.PaperTableII))
		} else {
			fmt.Println(experiments.FormatSpeedupGrid(grid))
		}
	}
	if *table == "3" || *table == "all" {
		grid, err := experiments.TableIII(*seed)
		if err != nil {
			return err
		}
		if *compare {
			fmt.Println(experiments.FormatComparisonSpeedup(grid, experiments.PaperTableIII))
		} else {
			fmt.Println(experiments.FormatSpeedupGrid(grid))
		}
	}

	if *figure == "2.1" || *figure == "all" {
		summary, dotSrc, err := experiments.Figure21()
		if err != nil {
			return err
		}
		if *dot {
			fmt.Println(dotSrc)
		} else {
			fmt.Println(summary)
		}
	}
	if *figure == "2.2" || *figure == "all" {
		sweep := experiments.Figure22Sweep(8, []int{64, 256, 1024, 4096, 16384})
		fmt.Println(experiments.FormatFigure22(sweep))
	}
	if *figure == "2.3" || *figure == "all" {
		res, err := experiments.Figure23()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure23(res))
	}
	if *figure == "3.1" || *figure == "all" {
		res, err := experiments.Figure31()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure31(res))
	}

	if *ablations {
		if err := printAblations(*seed); err != nil {
			return err
		}
	}
	return nil
}

func printAblations(seed int64) error {
	fmt.Println("Ablation B: leniency vs strict sequencing (14% updates, 3 relations)")
	len14, err := experiments.RunLeniencyAblation(14, 3, seed)
	if err != nil {
		return err
	}
	fmt.Printf("  lenient: work %d depth %4d  max ply %3d  avg %5.1f\n",
		len14.Lenient.Work, len14.Lenient.Depth, len14.Lenient.MaxWidth, len14.Lenient.AvgWidth)
	fmt.Printf("  strict:  work %d depth %4d  max ply %3d  avg %5.1f\n\n",
		len14.Strict.Work, len14.Strict.Depth, len14.Strict.MaxWidth, len14.Strict.AvgWidth)

	fmt.Println("Ablation A: relation representation (14% updates, 3 relations)")
	reps, err := experiments.RunRepresentationAblation(14, 3, seed)
	if err != nil {
		return err
	}
	for _, r := range reps {
		fmt.Printf("  %-6s work %6d  depth %4d  max ply %3d  avg %5.1f  created %5d  shared %5d\n",
			r.Rep, r.Plies.Work, r.Plies.Depth, r.Plies.MaxWidth, r.Plies.AvgWidth, r.Created, r.Shared)
	}
	fmt.Println()

	fmt.Println("Ablation D: placement policy on the 8-node hypercube (14% updates, 3 relations)")
	pols, err := experiments.RunPlacementAblation(14, 3, topo.NewHypercube(3), seed)
	if err != nil {
		return err
	}
	for _, p := range pols {
		fmt.Printf("  %-10s speedup %5.2f  efficiency %4.2f  comm events %6d\n",
			p.Policy, p.Result.Speedup, p.Result.Efficiency, p.Result.CommEvents)
	}
	fmt.Println()

	fmt.Println("Ablation D': static list scheduling vs dynamic work diffusion (14% updates, 3 relations)")
	dyn, err := experiments.RunDynamicAblation(14, 3, topo.NewHypercube(3), seed)
	if err != nil {
		return err
	}
	fmt.Printf("  static pressure:   speedup %5.2f  comm events %5d\n",
		dyn.Static.Speedup, dyn.Static.CommEvents)
	fmt.Printf("  dynamic diffusion: speedup %5.2f  comm events %5d  exports %4d\n\n",
		dyn.Dynamic.Speedup, dyn.Dynamic.CommEvents, dyn.Dynamic.Steals)

	fmt.Println("Ablation E: merge ordering (24% updates, 5 relations, 4 clients)")
	mo, err := experiments.RunMergeOrderAblation(24, 5, 4, seed)
	if err != nil {
		return err
	}
	fmt.Printf("  arrival order: depth %4d  max ply %3d  avg %5.1f\n",
		mo.Arrival.Depth, mo.Arrival.MaxWidth, mo.Arrival.AvgWidth)
	fmt.Printf("  relation-grouped: depth %4d  max ply %3d  avg %5.1f\n\n",
		mo.Grouped.Depth, mo.Grouped.MaxWidth, mo.Grouped.AvgWidth)

	fmt.Println("Machine scaling: hypercube sweep (4% updates, 1 relation)")
	points, err := experiments.RunHypercubeScaleSweep(4, 1, 6, seed)
	if err != nil {
		return err
	}
	for _, pt := range points {
		fmt.Printf("  %3d PEs: speedup %6.2f\n", pt.PEs, pt.Speedup)
	}
	_ = sched.PolicyPressure
	return nil
}
