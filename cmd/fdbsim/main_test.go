package main

import "testing"

func TestRunFigures(t *testing.T) {
	// Each figure must run to completion (stdout goes to the test log).
	for _, fig := range []string{"2.1", "2.2", "2.3", "3.1"} {
		if err := run([]string{"-figure", fig}); err != nil {
			t.Errorf("figure %s: %v", fig, err)
		}
	}
}

func TestRunFigureDOT(t *testing.T) {
	if err := run([]string{"-figure", "2.1", "-dot"}); err != nil {
		t.Error(err)
	}
}

func TestRunSingleTable(t *testing.T) {
	if err := run([]string{"-table", "2", "-seed", "7"}); err != nil {
		t.Error(err)
	}
}

func TestRunCompareMode(t *testing.T) {
	for _, table := range []string{"1", "2", "3"} {
		if err := run([]string{"-table", table, "-compare"}); err != nil {
			t.Errorf("table %s compare: %v", table, err)
		}
	}
}

func TestRunAblations(t *testing.T) {
	if err := run([]string{"-ablations"}); err != nil {
		t.Error(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
